//! Behavioural integration tests for the controller: write draining,
//! open-page grace, bank protection, and buffer accounting.

use parbs_dram::{
    Controller, DramConfig, FcfsScheduler, LineAddr, Request, RequestId, RequestKind, ThreadId,
};

fn read(id: u64, thread: usize, bank: usize, row: u64, col: u64, at: u64) -> Request {
    Request::new(
        id,
        ThreadId(thread),
        LineAddr { channel: 0, bank, row, col },
        RequestKind::Read,
        at,
    )
}

fn write(id: u64, thread: usize, bank: usize, row: u64, col: u64, at: u64) -> Request {
    Request::new(
        id,
        ThreadId(thread),
        LineAddr { channel: 0, bank, row, col },
        RequestKind::Write,
        at,
    )
}

#[test]
fn writes_drain_when_no_reads_pending() {
    let mut ctrl = Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
    for i in 0..8 {
        ctrl.try_enqueue(write(i, 0, (i % 8) as usize, 3, i % 32, 0)).unwrap();
    }
    let mut now = 0;
    let done = ctrl.run_to_drain(&mut now, 10_000_000);
    assert_eq!(done.len(), 8);
    assert_eq!(ctrl.stats().writes_completed, 8);
}

#[test]
fn write_watermark_triggers_drain_despite_reads() {
    // Fill the write buffer past the 0.75 watermark while a steady read is
    // present: writes must still make progress.
    let cfg = DramConfig { write_buffer_cap: 8, ..DramConfig::default() };
    let mut ctrl = Controller::with_checker(cfg, Box::new(FcfsScheduler::new()));
    for i in 0..8 {
        ctrl.try_enqueue(write(i, 0, (i % 8) as usize, 3, i % 32, 0)).unwrap();
    }
    assert!(!ctrl.can_accept_write());
    ctrl.try_enqueue(read(100, 1, 0, 7, 0, 0)).unwrap();
    let mut out = Vec::new();
    for now in 0..20_000 {
        ctrl.tick(now, &mut out);
    }
    let writes_done = out.iter().filter(|c| c.kind == RequestKind::Write).count();
    assert!(writes_done >= 6, "drain mode must service writes, got {writes_done}");
}

#[test]
fn open_page_grace_protects_a_row_between_hits() {
    // Thread 0 reads row 1 on bank 0; shortly after completion, thread 1's
    // conflict request arrives. The grace window should delay the precharge,
    // so a follow-up hit from thread 0 still hits.
    let cfg = DramConfig::default();
    let grace = cfg.timing.t_row_grace;
    assert!(grace > 0, "test requires the grace policy to be enabled");
    let mut ctrl = Controller::with_checker(cfg, Box::new(FcfsScheduler::new()));
    ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
    let mut now = 0;
    let first = ctrl.run_to_drain(&mut now, 1_000_000);
    let t_done = first[0].finish;
    // Conflict from thread 1 arrives immediately after.
    ctrl.try_enqueue(read(1, 1, 0, 2, 0, t_done)).unwrap();
    // Thread 0's next hit arrives a little later. Grace is anchored at the
    // column command (~160 cycles before the completion reaches the core),
    // so the covered window after completion is grace - 160 cycles.
    let mut out = Vec::new();
    let slack = grace.saturating_sub(170);
    assert!(slack >= 20, "grace too small for a post-completion window");
    let hit_arrival = t_done + slack / 2;
    for t in t_done..hit_arrival {
        ctrl.tick(t, &mut out);
    }
    ctrl.try_enqueue(read(2, 0, 0, 1, 1, hit_arrival)).unwrap();
    let mut now = hit_arrival;
    out.extend(ctrl.run_to_drain(&mut now, 1_000_000));
    // The hit (id 2) must be categorized as a row hit.
    let stats = ctrl.stats();
    assert!(
        stats.row_hits >= 1,
        "grace should have preserved the open row: hits={} closed={} conflicts={}",
        stats.row_hits,
        stats.row_closed,
        stats.row_conflicts
    );
    // And everyone completed.
    assert_eq!(out.len(), 2);
}

#[test]
fn grace_does_not_starve_conflicts() {
    // A continuous stream of hits from thread 0 must not block thread 1's
    // conflict forever: the 3x-grace cap bounds the wait.
    let cfg = DramConfig::default();
    let cap = 3 * cfg.timing.t_row_grace;
    let mut ctrl = Controller::with_checker(cfg, Box::new(FcfsScheduler::new()));
    ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
    let mut out = Vec::new();
    let mut next_id = 1u64;
    let mut conflict_done = None;
    for now in 0..60_000u64 {
        ctrl.tick(now, &mut out);
        // Enqueue a fresh hit every 200 cycles to keep renewing the grace.
        if now % 200 == 0 && ctrl.can_accept_read() {
            ctrl.try_enqueue(read(next_id, 0, 0, 1, next_id % 32, now)).unwrap();
            next_id += 1;
        }
        if now == 1_000 {
            ctrl.try_enqueue(read(9_999, 1, 0, 2, 0, now)).unwrap();
        }
        for c in out.drain(..) {
            if c.request == RequestId(9_999) {
                conflict_done = Some(c.finish);
            }
        }
        if conflict_done.is_some() {
            break;
        }
    }
    let finish = conflict_done.expect("conflict request must not starve");
    assert!(finish < 1_000 + 10 * cap, "conflict waited {} cycles, cap is {cap}", finish - 1_000);
}

#[test]
fn buffer_counts_balance() {
    let mut ctrl = Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
    let mut accepted = 0;
    for i in 0..200u64 {
        let req = if i % 3 == 0 {
            write(i, (i % 4) as usize, (i % 8) as usize, i % 5, i % 32, 0)
        } else {
            read(i, (i % 4) as usize, (i % 8) as usize, i % 5, i % 32, 0)
        };
        if ctrl.try_enqueue(req).is_ok() {
            accepted += 1;
        }
    }
    let mut now = 0;
    let done = ctrl.run_to_drain(&mut now, 10_000_000);
    assert_eq!(done.len(), accepted);
    let s = ctrl.stats();
    assert_eq!(s.reads_completed + s.writes_completed, accepted as u64);
    assert_eq!(s.reads_completed, s.reads_received);
    assert_eq!(s.writes_completed, s.writes_received);
}
