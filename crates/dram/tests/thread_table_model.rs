//! Model-based validation of [`ThreadTable`]: every operation sequence must
//! leave the sparse table observably identical to a dense
//! `Vec<Option<T>>` reference model indexed by thread id, for ids spanning
//! the full sparse range the flow frontend produces (up to `1 << 20`).

use parbs_dram::{ThreadId, ThreadTable};
use proptest::collection::vec;
use proptest::prelude::*;

/// One operation against both the table and the reference model.
#[derive(Debug, Clone)]
enum Op {
    /// `insert(id, value)`.
    Insert(usize, u64),
    /// `*get_or_default(id) += value`.
    Bump(usize, u64),
    /// `retire(id)`.
    Retire(usize),
    /// `retain(|_, v| *v % 2 == 0)` — bulk idle sweep.
    RetainEven,
    /// `clear()`.
    Clear,
}

/// Thread ids cluster at small values (the closed-loop regime) but reach
/// `1 << 20` (the open-loop flow regime), so collisions and true sparsity
/// are both exercised.
fn sparse_id() -> impl Strategy<Value = usize> {
    prop_oneof![
        4 => 0usize..16,
        2 => 0usize..1024,
        1 => 0usize..(1 << 20),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (sparse_id(), any::<u64>()).prop_map(|(id, v)| Op::Insert(id, v)),
        4 => (sparse_id(), 0u64..100).prop_map(|(id, v)| Op::Bump(id, v)),
        3 => sparse_id().prop_map(Op::Retire),
        1 => Just(Op::RetainEven),
        1 => Just(Op::Clear),
    ]
}

/// The dense reference: `slots[id]` is `Some(state)` iff `id` is
/// registered. Grown with the historical `resize(id + 1, None)` pattern.
#[derive(Default)]
struct DenseModel {
    slots: Vec<Option<u64>>,
}

impl DenseModel {
    fn slot(&mut self, id: usize) -> &mut Option<u64> {
        if id >= self.slots.len() {
            self.slots.resize(id + 1, None);
        }
        &mut self.slots[id]
    }

    /// Registered (id, state) pairs in ascending id order — what a dense
    /// `for t in 0..len` scheduler loop observes.
    fn active(&self) -> Vec<(usize, u64)> {
        self.slots.iter().enumerate().filter_map(|(id, s)| s.map(|v| (id, v))).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn table_matches_dense_model(ops in vec(op(), 0..120)) {
        let mut table: ThreadTable<u64> = ThreadTable::new();
        let mut model = DenseModel::default();
        for op in &ops {
            match *op {
                Op::Insert(id, v) => {
                    let old = table.insert(ThreadId(id), v);
                    prop_assert_eq!(old, model.slot(id).replace(v));
                }
                Op::Bump(id, v) => {
                    *table.get_or_default(ThreadId(id)) =
                        table.get(ThreadId(id)).copied().unwrap_or_default().wrapping_add(v);
                    let slot = model.slot(id);
                    *slot = Some(slot.unwrap_or_default().wrapping_add(v));
                }
                Op::Retire(id) => {
                    prop_assert_eq!(table.retire(ThreadId(id)), model.slot(id).take());
                }
                Op::RetainEven => {
                    table.retain(|_, v| *v % 2 == 0);
                    for slot in &mut model.slots {
                        if slot.is_some_and(|v| v % 2 != 0) {
                            *slot = None;
                        }
                    }
                }
                Op::Clear => {
                    table.clear();
                    model.slots.clear();
                }
            }
            // Observational equivalence after every step. The full dense
            // scan is O(max id), so it runs per-step only while the model
            // is small; past that, the cheap invariants still run and the
            // full sweep is deferred to the end of the sequence.
            if model.slots.len() <= 4096 {
                let active = model.active();
                prop_assert_eq!(table.len(), active.len());
                let iterated: Vec<(usize, u64)> =
                    table.iter_active().map(|(t, &v)| (t.0, v)).collect();
                prop_assert_eq!(&iterated, &active);
            } else {
                prop_assert_eq!(table.is_empty(), table.ids().is_empty());
                prop_assert!(table.ids().windows(2).all(|w| w[0] < w[1]), "ids stay sorted");
            }
        }
        // Full observational equivalence at the end of the sequence.
        let active = model.active();
        prop_assert_eq!(table.len(), active.len());
        let iterated: Vec<(usize, u64)> = table.iter_active().map(|(t, &v)| (t.0, v)).collect();
        prop_assert_eq!(&iterated, &active);
        let ids: Vec<usize> = active.iter().map(|&(id, _)| id).collect();
        prop_assert_eq!(table.ids(), ids.as_slice());
        for &(id, v) in &active {
            prop_assert_eq!(table.get(ThreadId(id)), Some(&v));
            prop_assert!(table.contains(ThreadId(id)));
        }
        // `for_each_mut` visits exactly the registered set, ascending.
        let mut visited = Vec::new();
        table.for_each_mut(|t, v| visited.push((t.0, *v)));
        prop_assert_eq!(visited, model.active());
    }
}
