//! Property-based validation: under random request streams and adversarial
//! (but total-order) scheduling policies, the controller never violates a
//! DRAM timing constraint and always drains every request.

use std::cmp::Ordering;

use parbs_dram::{
    Controller, DramConfig, FcfsScheduler, MemoryScheduler, Request, RequestKind, SchedView,
    ThreadId,
};
use proptest::prelude::*;

/// Services youngest requests first — a deliberately pathological order that
/// still must produce a legal command stream.
#[derive(Debug, Default)]
struct LifoScheduler;

impl MemoryScheduler for LifoScheduler {
    fn name(&self) -> &str {
        "LIFO"
    }
    fn priority_key(&self, req: &Request, _view: &SchedView<'_>) -> u128 {
        u128::from(req.id.0)
    }
    fn compare(&self, a: &Request, b: &Request, _view: &SchedView<'_>) -> Ordering {
        b.id.cmp(&a.id)
    }
}

/// Orders requests by a keyed hash — arbitrary but stable total order.
#[derive(Debug)]
struct HashOrderScheduler {
    key: u64,
}

impl MemoryScheduler for HashOrderScheduler {
    fn name(&self) -> &str {
        "HASH"
    }
    fn priority_key(&self, req: &Request, _view: &SchedView<'_>) -> u128 {
        // Smaller hash wins under `compare`, so invert for the packed key.
        let h = (req.id.0 ^ self.key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (u128::from(!h) << 64) | u128::from(u64::MAX - req.id.0)
    }
    fn compare(&self, a: &Request, b: &Request, _view: &SchedView<'_>) -> Ordering {
        let h = |r: &Request| (r.id.0 ^ self.key).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h(a).cmp(&h(b)).then(a.id.cmp(&b.id))
    }
}

#[derive(Debug, Clone)]
struct ReqSpec {
    thread: u8,
    bank: u8,
    row: u8,
    col: u8,
    write: bool,
    gap: u16,
}

fn req_spec() -> impl Strategy<Value = ReqSpec> {
    (0u8..4, 0u8..8, 0u8..4, 0u8..32, any::<bool>(), 0u16..200).prop_map(
        |(thread, bank, row, col, write, gap)| ReqSpec { thread, bank, row, col, write, gap },
    )
}

fn run_stream(specs: &[ReqSpec], scheduler: Box<dyn MemoryScheduler>) -> (usize, usize) {
    let cfg = DramConfig::default();
    let mapper = cfg.mapper();
    let mut ctrl = Controller::with_checker(cfg, scheduler);
    let mut out = Vec::new();
    let mut now = 0u64;
    let mut expected_reads = 0;
    let mut expected_writes = 0;
    for (i, s) in specs.iter().enumerate() {
        // Advance time by the spec's gap, ticking the controller.
        for _ in 0..s.gap {
            ctrl.tick(now, &mut out);
            now += 1;
        }
        let addr = mapper.decode(mapper.encode(parbs_dram::LineAddr {
            channel: 0,
            bank: s.bank as usize,
            row: s.row as u64,
            col: s.col as u64,
        }));
        let kind = if s.write { RequestKind::Write } else { RequestKind::Read };
        let req = Request::new(i as u64, ThreadId(s.thread as usize), addr, kind, now);
        if ctrl.try_enqueue(req).is_ok() {
            if s.write {
                expected_writes += 1;
            } else {
                expected_reads += 1;
            }
        }
    }
    out.extend(ctrl.run_to_drain(&mut now, 10_000_000));
    let done = out;
    let reads = done.iter().filter(|c| c.kind == RequestKind::Read).count();
    let writes = done.iter().filter(|c| c.kind == RequestKind::Write).count();
    assert_eq!(reads, expected_reads, "every accepted read must complete");
    assert_eq!(writes, expected_writes, "every accepted write must complete");
    (reads, writes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fcfs_never_violates_protocol(specs in proptest::collection::vec(req_spec(), 1..120)) {
        // `Controller::with_checker` panics on the first protocol violation.
        run_stream(&specs, Box::new(FcfsScheduler::new()));
    }

    #[test]
    fn lifo_never_violates_protocol(specs in proptest::collection::vec(req_spec(), 1..120)) {
        run_stream(&specs, Box::new(LifoScheduler));
    }

    #[test]
    fn hash_order_never_violates_protocol(
        specs in proptest::collection::vec(req_spec(), 1..120),
        key in any::<u64>(),
    ) {
        run_stream(&specs, Box::new(HashOrderScheduler { key }));
    }

    #[test]
    fn latencies_are_bounded_below_by_row_hit_minimum(
        specs in proptest::collection::vec(req_spec(), 1..40),
    ) {
        let cfg = DramConfig::default();
        let t = cfg.timing;
        let mut ctrl = Controller::with_checker(cfg, Box::new(FcfsScheduler::new()));
        let mut now = 0u64;
        for (i, s) in specs.iter().enumerate() {
            let addr = parbs_dram::LineAddr {
                channel: 0, bank: s.bank as usize, row: s.row as u64, col: s.col as u64,
            };
            let _ = ctrl.try_enqueue(Request::new(
                i as u64, ThreadId(s.thread as usize), addr, RequestKind::Read, now,
            ));
        }
        let done = ctrl.run_to_drain(&mut now, 10_000_000);
        let min = t.t_cl + t.t_burst + t.front_latency;
        for c in &done {
            prop_assert!(c.latency() >= min, "latency {} below physical minimum {min}", c.latency());
        }
    }
}
