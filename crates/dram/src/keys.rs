//! The scheduler priority-key contract.
//!
//! Every [`crate::MemoryScheduler`] packs its priority order into a `u128`
//! ([`crate::MemoryScheduler::priority_key`], largest wins). The packing is
//! load-bearing: the controller's hot path schedules purely on cached keys,
//! so a bit-layout mistake silently reorders requests. This module lets each
//! scheduler *declare* its layout as data — a [`KeyLayout`] of ordered named
//! bit-fields — which `parbs-analyze` then checks statically (fields
//! non-overlapping, most-significant-first dominance order matching the
//! documented intent, declared domains fitting their widths) and
//! cross-validates against `priority_key` over enumerated scheduler states.
//!
//! Float-keyed policies (NFQ's virtual deadlines) additionally need an
//! order-preserving `f64 → u64` embedding; [`f64_total_order_bits`] provides
//! the standard sign-magnitude flip whose unsigned order equals
//! [`f64::total_cmp`] over **all** values, including subnormals, zeros of
//! both signs, infinities and NaNs.

/// What a key field encodes — the analyzer uses this to compute the
/// expected field value from the request/channel state where it can, and to
/// pick the right domain checks where it cannot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldSemantic {
    /// 1 if the request is marked (PAR-BS: member of the current batch).
    Marked,
    /// 1 if the request is currently a row hit.
    RowHit,
    /// 1 if the request is a row hit whose bank is still inside the
    /// capture window (NFQ's priority-inversion prevention).
    RecentRowHit,
    /// 1 if the request's thread is boosted by a fairness intervention
    /// (STFM's fairness mode).
    Boosted,
    /// 1 if the request's thread is *not* currently blacklisted (BLISS:
    /// non-blacklisted threads are served first).
    NotBlacklisted,
    /// Inverted per-request priority level: lower level value packs larger.
    PriorityLevel,
    /// Inverted rank: lower (better) rank packs larger. Used for PAR-BS's
    /// in-batch rank and ATLAS's attained-service rank.
    Rank,
    /// Inverted virtual deadline via [`f64_total_order_bits`]: earlier
    /// deadlines pack larger.
    Deadline,
    /// Inverted request id: older requests pack larger. Being injective
    /// over queued requests, this is the total-order tiebreaker every
    /// layout must end with.
    Age,
}

/// One named bit-field of a packed priority key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyField {
    /// Field name, unique within its layout (e.g. `"row_hit"`).
    pub name: &'static str,
    /// What the field encodes.
    pub semantic: FieldSemantic,
    /// Position of the field's least-significant bit in the `u128` key.
    pub lo: u32,
    /// Width in bits (1–128).
    pub width: u32,
}

impl KeyField {
    /// The field's bit mask within the key.
    #[must_use]
    pub fn mask(&self) -> u128 {
        if self.width >= 128 {
            u128::MAX
        } else {
            ((1u128 << self.width) - 1) << self.lo
        }
    }

    /// Extracts the field's value from a packed key.
    #[must_use]
    pub fn extract(&self, key: u128) -> u128 {
        (key & self.mask()) >> self.lo
    }
}

/// A scheduler's declared priority-key layout: named bit-fields listed
/// **most-significant first**, i.e. in dominance order — the first field is
/// the scheduler's primary criterion, the last its final tiebreaker.
///
/// For a valid layout (non-overlapping fields in strictly descending bit
/// position, unused bits always zero), comparing two keys as plain `u128`s
/// is identical to comparing the fields lexicographically in declaration
/// order; that equivalence is what makes the declaration checkable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyLayout {
    /// The scheduler the layout belongs to (matches
    /// [`crate::MemoryScheduler::name`]).
    pub scheduler: &'static str,
    /// The fields, most-significant (highest-priority intent) first.
    pub fields: &'static [KeyField],
}

impl KeyLayout {
    /// The union of all field masks — bits of the key the layout accounts
    /// for. A packed key must never set bits outside this mask.
    #[must_use]
    pub fn used_mask(&self) -> u128 {
        self.fields.iter().map(KeyField::mask).fold(0, |m, f| m | f)
    }

    /// Looks up a field by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&KeyField> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// Checks the structural invariants of the layout.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: an empty
    /// layout, a zero-width or out-of-range field, duplicate field names,
    /// overlapping fields, fields not in strictly descending (MSB-first)
    /// order, or a final tiebreaker that is not an [`FieldSemantic::Age`]
    /// field starting at bit 0.
    pub fn validate(&self) -> Result<(), String> {
        if self.fields.is_empty() {
            return Err(format!("{}: layout has no fields", self.scheduler));
        }
        let mut names: Vec<&str> = self.fields.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.fields.len() {
            return Err(format!("{}: duplicate field name", self.scheduler));
        }
        let mut prev_lo: Option<u32> = None;
        for f in self.fields {
            if f.width == 0 {
                return Err(format!("{}: field `{}` has zero width", self.scheduler, f.name));
            }
            if u64::from(f.lo) + u64::from(f.width) > 128 {
                return Err(format!(
                    "{}: field `{}` ({}..{}) exceeds 128 bits",
                    self.scheduler,
                    f.name,
                    f.lo,
                    f.lo + f.width
                ));
            }
            match prev_lo {
                // MSB-first and non-overlapping in one check: each field
                // must end strictly below the previous field's low bit.
                Some(lo) if f.lo + f.width > lo => {
                    return Err(format!(
                        "{}: field `{}` overlaps or is out of MSB-first order",
                        self.scheduler, f.name
                    ));
                }
                _ => prev_lo = Some(f.lo),
            }
        }
        let last = self.fields.last().expect("non-empty");
        if last.semantic != FieldSemantic::Age || last.lo != 0 {
            return Err(format!(
                "{}: the final tiebreaker must be an age field at bit 0 \
                 (found `{}` at bit {})",
                self.scheduler, last.name, last.lo
            ));
        }
        Ok(())
    }
}

/// Maps an `f64` to a `u64` whose **unsigned integer order equals
/// [`f64::total_cmp`]** over all inputs: the sign-magnitude flip. Negative
/// values (sign bit set) have all bits inverted — descending magnitude
/// becomes ascending integers — and non-negative values get the sign bit
/// set, placing them above every negative value.
///
/// This is total: ties map to equal integers, `-0.0 < +0.0`, subnormals
/// order by magnitude, and NaNs land at the extremes exactly as
/// `total_cmp` places them.
#[must_use]
pub fn f64_total_order_bits(x: f64) -> u64 {
    let bits = x.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: KeyLayout = KeyLayout {
        scheduler: "test",
        fields: &[
            KeyField { name: "hit", semantic: FieldSemantic::RowHit, lo: 64, width: 1 },
            KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
        ],
    };

    #[test]
    fn valid_layout_passes() {
        GOOD.validate().unwrap();
        assert_eq!(GOOD.used_mask(), (1u128 << 65) - 1);
        assert_eq!(GOOD.field("hit").unwrap().extract(1 << 64), 1);
    }

    #[test]
    fn overlap_and_order_are_rejected() {
        let overlap = KeyLayout {
            scheduler: "test",
            fields: &[
                KeyField { name: "a", semantic: FieldSemantic::RowHit, lo: 63, width: 2 },
                KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
            ],
        };
        assert!(overlap.validate().unwrap_err().contains("overlaps"));
        let swapped = KeyLayout {
            scheduler: "test",
            fields: &[
                KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
                KeyField { name: "hit", semantic: FieldSemantic::RowHit, lo: 64, width: 1 },
            ],
        };
        assert!(swapped.validate().is_err(), "LSB-first declaration must be rejected");
    }

    #[test]
    fn missing_age_tiebreaker_is_rejected() {
        let no_age = KeyLayout {
            scheduler: "test",
            fields: &[KeyField { name: "hit", semantic: FieldSemantic::RowHit, lo: 0, width: 1 }],
        };
        assert!(no_age.validate().unwrap_err().contains("age"));
    }

    #[test]
    fn total_order_bits_matches_total_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            -1.0e300,
            -2.5,
            -1.0,
            -f64::MIN_POSITIVE, // largest negative subnormal's neighbor
            -f64::from_bits(1), // smallest-magnitude negative subnormal
            -0.0,
            0.0,
            f64::from_bits(1), // smallest positive subnormal
            f64::MIN_POSITIVE,
            1.0,
            1.0 + f64::EPSILON,
            2.5,
            1.0e300,
            f64::MAX,
            f64::INFINITY,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    f64_total_order_bits(a).cmp(&f64_total_order_bits(b)),
                    a.total_cmp(&b),
                    "order mismatch for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn total_order_bits_is_total_on_ties_and_nan() {
        assert_eq!(f64_total_order_bits(1.5), f64_total_order_bits(1.5), "ties map equal");
        assert!(f64_total_order_bits(-0.0) < f64_total_order_bits(0.0));
        let nan = f64::NAN;
        assert_eq!(f64_total_order_bits(nan).cmp(&f64_total_order_bits(1.0)), nan.total_cmp(&1.0));
    }
}
