//! The per-channel memory controller: request buffers + scheduler + command
//! issue logic.

use parbs_obs::{Event, EventSink, ServiceClass};

use crate::stats::ControllerStats;
use crate::trace_sink::obs_cmd_kind;
use crate::{
    Command, CommandKind, DramConfig, MemoryScheduler, ProtocolChecker, Request, RequestId,
    RequestKind, SchedView, ThreadId, DRAM_CYCLE,
};

/// A serviced request: delivered by [`Controller::tick`] once the data
/// transfer and the fixed front-end latency have elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Completion {
    /// The request that finished.
    pub request: RequestId,
    /// Its issuing thread.
    pub thread: ThreadId,
    /// Read or write.
    pub kind: RequestKind,
    /// Cycle the request entered the buffer.
    pub arrival: u64,
    /// Cycle the requesting core observes the data.
    pub finish: u64,
}

impl Completion {
    /// End-to-end latency of the request in processor cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.finish.saturating_sub(self.arrival)
    }
}

/// Error returned when a request cannot enter a full buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnqueueError {
    /// Which buffer was full.
    pub kind: RequestKind,
}

impl std::fmt::Display for EnqueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            RequestKind::Read => write!(f, "read request buffer is full"),
            RequestKind::Write => write!(f, "write buffer is full"),
        }
    }
}

impl std::error::Error for EnqueueError {}

/// One DRAM channel's controller: a read request buffer, a write buffer, a
/// pluggable [`MemoryScheduler`] for reads, and FR-FCFS write draining.
///
/// Reads are prioritized over writes because loads block the cores' forward
/// progress (Section 7.2); writes drain when the write buffer crosses its
/// high-water mark or when no reads are pending.
pub struct Controller {
    config: DramConfig,
    channel: crate::Channel,
    scheduler: Box<dyn MemoryScheduler>,
    reads: Vec<Request>,
    writes: Vec<Request>,
    pending: Vec<Completion>,
    stats: ControllerStats,
    checker: Option<ProtocolChecker>,
    /// Requests whose first command has been issued (used to classify each
    /// request as row hit / closed / conflict exactly once).
    touched: std::collections::HashSet<RequestId>,
    /// Write-drain hysteresis: set when the write buffer crosses the high
    /// watermark, cleared when it drains to the low watermark.
    draining: bool,
    /// Cycle of the last issued all-bank refresh, per rank.
    last_refresh: Vec<u64>,
    /// Attached observability sink (`None` on the tracing-off hot path:
    /// instrumentation then costs one branch and constructs nothing).
    sink: Option<Box<dyn EventSink>>,
    /// Scratch buffer for collecting scheduler-emitted events each slot.
    sched_buf: Vec<Event>,
    /// Last emitted `(busy_banks, queued_reads)` bus sample, for
    /// emit-on-change deduplication.
    last_bus_sample: (u32, u32),
    /// Cached packed priority keys, parallel to `reads` while
    /// `read_keys_dirty` is false (see the key-caching contract on
    /// [`MemoryScheduler`]). Larger key = serviced first.
    read_keys: Vec<u128>,
    /// Set on any event that can change read priorities (arrival,
    /// bank-state-changing command, `pre_schedule` reporting a change,
    /// external scheduler mutation); cleared by recomputing `read_keys`.
    read_keys_dirty: bool,
    /// Test shim: route scheduling decisions through the O(n log n)
    /// comparator sort instead of cached keys.
    comparator_path: bool,
    /// Fault-injection shim: when false, the controller never prioritizes
    /// (or issues) refreshes — the seeded "dropped tREFI rule" bug that the
    /// refresh model checker must catch. Always true in production.
    refresh_gating: bool,
    /// Reusable buffer for inline write-side FR-FCFS keys.
    write_keys: Vec<u128>,
    /// Reusable selection scratch: requests already tried this decision.
    tried: Vec<bool>,
    /// Reusable per-thread bank bitmasks for [`Controller::sample_blp`].
    blp_masks: Vec<u64>,
    /// Threads with a non-zero mask in `blp_masks`, in first-touch order.
    blp_touched: Vec<usize>,
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("scheduler", &self.scheduler.name())
            .field("reads", &self.reads.len())
            .field("writes", &self.writes.len())
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl Controller {
    /// Creates a controller for one channel of `config` driven by
    /// `scheduler`.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`DramConfig::validate`].
    #[must_use]
    pub fn new(config: DramConfig, scheduler: Box<dyn MemoryScheduler>) -> Self {
        config.validate().expect("invalid DRAM configuration");
        let channel = crate::Channel::with_ranks(
            config.ranks_per_channel(),
            config.banks_per_rank(),
            config.timing,
        );
        Controller {
            channel,
            scheduler,
            reads: Vec::new(),
            writes: Vec::new(),
            pending: Vec::new(),
            stats: ControllerStats::default(),
            checker: None,
            touched: std::collections::HashSet::new(),
            draining: false,
            last_refresh: vec![0; config.ranks_per_channel()],
            sink: None,
            sched_buf: Vec::new(),
            last_bus_sample: (0, 0),
            read_keys: Vec::new(),
            read_keys_dirty: true,
            comparator_path: false,
            refresh_gating: true,
            write_keys: Vec::new(),
            tried: Vec::new(),
            blp_masks: Vec::new(),
            blp_touched: Vec::new(),
            config,
        }
    }

    /// Like [`Controller::new`] but verifies every issued command against a
    /// [`ProtocolChecker`]; any timing violation panics. Intended for tests.
    #[must_use]
    pub fn with_checker(config: DramConfig, scheduler: Box<dyn MemoryScheduler>) -> Self {
        let mut c = Self::new(config, scheduler);
        c.checker = Some(ProtocolChecker::with_ranks(
            c.config.ranks_per_channel(),
            c.config.banks_per_rank(),
            c.config.timing,
        ));
        c
    }

    /// The scheduler's display name.
    #[must_use]
    pub fn scheduler_name(&self) -> &str {
        self.scheduler.name()
    }

    /// Mutable access to the scheduling policy (to configure weights etc.).
    /// Conservatively invalidates the cached priority keys, since the caller
    /// may mutate priority-relevant state.
    pub fn scheduler_mut(&mut self) -> &mut dyn MemoryScheduler {
        self.read_keys_dirty = true;
        &mut *self.scheduler
    }

    /// Test/verification shim: when enabled, scheduling decisions run
    /// through the original full-queue comparator sort
    /// ([`MemoryScheduler::compare`]) instead of cached priority keys. Both
    /// paths must produce identical command streams; the keyed path is the
    /// default because it avoids the per-cycle O(n log n) sort.
    pub fn set_comparator_path(&mut self, enabled: bool) {
        self.comparator_path = enabled;
        self.read_keys_dirty = true;
    }

    /// Fault-injection shim for the refresh model checker: when disabled,
    /// the controller drops refresh scheduling entirely — no rank is ever
    /// refreshed, so a busy channel violates the tREFI deadline rule. Used
    /// by `parbs-analyze check-timing --refresh` to cross-validate that its
    /// abstract refresh model and the concrete controller agree on both the
    /// correct behavior and the seeded bug. Always enabled in production.
    pub fn set_refresh_gating(&mut self, enabled: bool) {
        self.refresh_gating = enabled;
    }

    /// Refresh bookkeeping exposed to the analysis oracle: the cycle of the
    /// most recent all-bank refresh, per rank (0 = never refreshed since
    /// construction — the boot anchor the tREFI deadline measures from).
    #[must_use]
    pub fn last_refresh_cycles(&self) -> &[u64] {
        &self.last_refresh
    }

    /// The packed read-priority keys at cycle `now`, index-aligned with
    /// [`Controller::reads`] (recomputing them first if the cache is
    /// stale). Introspection hook for checkpoint/restore validation: the
    /// key-caching contract requires these to be identical before a
    /// snapshot and after the matching resume.
    pub fn priority_keys(&mut self, now: u64) -> Vec<u128> {
        if self.read_keys_dirty {
            self.refresh_read_keys(now);
        }
        self.read_keys.clone()
    }

    /// The channel state (open rows, bus occupancy).
    #[must_use]
    pub fn channel(&self) -> &crate::Channel {
        &self.channel
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// Currently queued read requests (oldest-to-newest arrival order).
    #[must_use]
    pub fn reads(&self) -> &[Request] {
        &self.reads
    }

    /// Number of queued writes.
    #[must_use]
    pub fn write_queue_len(&self) -> usize {
        self.writes.len()
    }

    /// True if another read can be accepted.
    #[must_use]
    pub fn can_accept_read(&self) -> bool {
        self.reads.len() < self.config.request_buffer_cap
    }

    /// True if another write can be accepted.
    #[must_use]
    pub fn can_accept_write(&self) -> bool {
        self.writes.len() < self.config.write_buffer_cap
    }

    /// Inserts a request into the appropriate buffer.
    ///
    /// # Errors
    ///
    /// Returns [`EnqueueError`] if the target buffer is full; the caller
    /// (core model) must retry later, which models back-pressure into the
    /// cores' MSHRs.
    pub fn try_enqueue(&mut self, req: Request) -> Result<(), EnqueueError> {
        match req.kind {
            RequestKind::Read => {
                if !self.can_accept_read() {
                    return Err(EnqueueError { kind: RequestKind::Read });
                }
                self.scheduler.on_arrival(&req, req.arrival);
                self.stats.reads_received += 1;
                if self.observing() {
                    self.emit(&Event::Enqueued {
                        at: req.arrival,
                        request: req.id.0,
                        thread: req.thread.0,
                        write: false,
                        rank: self.channel.rank_of(req.addr.bank),
                        bank: req.addr.bank,
                        row: req.addr.row,
                    });
                }
                self.reads.push(req);
                self.read_keys_dirty = true;
            }
            RequestKind::Write => {
                if !self.can_accept_write() {
                    return Err(EnqueueError { kind: RequestKind::Write });
                }
                self.stats.writes_received += 1;
                if self.observing() {
                    self.emit(&Event::Enqueued {
                        at: req.arrival,
                        request: req.id.0,
                        thread: req.thread.0,
                        write: true,
                        rank: self.channel.rank_of(req.addr.bank),
                        bank: req.addr.bank,
                        row: req.addr.row,
                    });
                }
                self.writes.push(req);
            }
        }
        Ok(())
    }

    /// Attaches an observability sink: from now on every request-lifecycle
    /// occurrence (enqueue, batch formation/marking/ranking, command issue,
    /// completion, write-drain transitions, refresh, bus samples) is pushed
    /// into it as a [`parbs_obs::Event`]. Returns the previously attached
    /// sink, if any.
    ///
    /// With no sink attached (the default) the instrumentation costs one
    /// `Option` branch per site — no event is built, nothing allocates.
    pub fn set_event_sink(&mut self, sink: Box<dyn EventSink>) -> Option<Box<dyn EventSink>> {
        let prev = self.sink.replace(sink);
        self.scheduler.set_observing(true);
        prev
    }

    /// Detaches and returns the observability sink, first flushing any
    /// events still buffered inside the scheduler.
    pub fn take_event_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.flush_scheduler_events();
        let sink = self.sink.take();
        self.scheduler.set_observing(self.observing());
        sink
    }

    /// True while a sink is attached.
    #[must_use]
    fn observing(&self) -> bool {
        self.sink.is_some()
    }

    /// Pushes one event to the attached sink. Callers guard with
    /// [`Controller::observing`] so events are never built when disabled.
    fn emit(&mut self, event: &Event) {
        if let Some(sink) = &mut self.sink {
            sink.record(event);
        }
    }

    /// Collects events buffered by the scheduler (batch formation, marking,
    /// ranking) and forwards them to the sink.
    fn flush_scheduler_events(&mut self) {
        if !self.observing() {
            return;
        }
        let mut buf = std::mem::take(&mut self.sched_buf);
        self.scheduler.drain_events(&mut buf);
        if let Some(sink) = &mut self.sink {
            for event in &buf {
                sink.record(event);
            }
        }
        buf.clear();
        self.sched_buf = buf;
    }

    /// Forwards per-thread memory-stall feedback to the scheduler (used by
    /// STFM). `stall_cycles[t]` is thread `t`'s stall-cycle increment since
    /// the last call.
    pub fn report_stall_cycles(&mut self, stall_cycles: &[u64], now: u64) {
        self.scheduler.on_stall_cycles(stall_cycles, now);
        self.read_keys_dirty = true;
    }

    /// Advances the controller to processor cycle `now`.
    ///
    /// Completions whose data (plus front-end latency) has arrived by `now`
    /// are appended to `out`. A scheduling decision — at most one DRAM
    /// command on the channel's command bus — is made on DRAM-cycle
    /// boundaries (`now % DRAM_CYCLE == 0`).
    pub fn tick(&mut self, now: u64, out: &mut Vec<Completion>) {
        // Deliver finished requests.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].finish <= now {
                out.push(self.pending.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if !now.is_multiple_of(DRAM_CYCLE) {
            return;
        }
        self.sample_blp(now);
        if self.observing() {
            // Bank/bus occupancy sample, deduplicated on change so idle
            // stretches don't inflate the stream.
            let sample = (self.channel.banks_servicing(now) as u32, self.reads.len() as u32);
            if sample != self.last_bus_sample {
                self.last_bus_sample = sample;
                self.emit(&Event::BusSample {
                    at: now,
                    busy_banks: sample.0,
                    queued_reads: sample.1,
                    queued_writes: self.writes.len() as u32,
                });
            }
        }
        {
            let view = SchedView { channel: &self.channel, now };
            if self.scheduler.pre_schedule(&mut self.reads, &view) {
                self.read_keys_dirty = true;
            }
        }
        self.flush_scheduler_events();
        // Refresh: one all-bank REF per rank every t_refi. Once any rank is
        // due, the controller stops issuing new commands until the data bus
        // drains and the most-overdue rank's refresh can begin — bounded
        // deferral, guaranteed progress. Other ranks keep their open rows:
        // only the refreshed rank's banks are closed and blacked out.
        let t_refi = self.config.timing.t_refi;
        if t_refi > 0 && self.refresh_gating {
            let due = (0..self.channel.rank_count())
                .filter(|&r| now >= self.last_refresh[r] + t_refi)
                .min_by_key(|&r| (self.last_refresh[r], r));
            if let Some(rank) = due {
                // Always-on refresh-path checks (the bank/channel issue
                // paths got the same treatment in their own files): a rank
                // picked for refresh must exist and must actually be due —
                // a stale `last_refresh` entry here would silently skip
                // refreshes and break the tREFI deadline downstream.
                assert!(rank < self.channel.rank_count(), "refresh rank {rank} out of range");
                assert!(
                    now >= self.last_refresh[rank] + t_refi,
                    "rank {rank} selected for refresh {} cycles early",
                    self.last_refresh[rank] + t_refi - now
                );
                let cmd = Command::refresh(rank, RequestId(u64::MAX));
                if self.channel.can_issue(&cmd, now) {
                    if let Some(checker) = &mut self.checker {
                        checker
                            .observe(&cmd, now)
                            .unwrap_or_else(|v| panic!("DRAM protocol violation: {v}"));
                    }
                    if self.observing() {
                        self.emit(&Event::Refresh { at: now, rank });
                    }
                    self.channel.refresh_rank(rank, now);
                    self.stats.refreshes += 1;
                    self.stats.commands_issued += 1;
                    assert!(
                        now > self.last_refresh[rank] || self.last_refresh[rank] == 0,
                        "refresh bookkeeping must advance monotonically"
                    );
                    self.last_refresh[rank] = now;
                    // Refresh closes the rank's rows: row-hit bits changed.
                    self.read_keys_dirty = true;
                }
                return;
            }
        }
        // Write-drain hysteresis: start draining at the high watermark and
        // keep going until the buffer is largely empty, so writes batch into
        // efficient bursts instead of constantly stealing read bandwidth.
        let high = self.config.write_drain_watermark * self.config.write_buffer_cap as f64;
        let low = high * 0.33;
        let was_draining = self.draining;
        if self.writes.len() as f64 >= high {
            self.draining = true;
        } else if (self.writes.len() as f64) <= low {
            self.draining = false;
        }
        if self.draining != was_draining && self.observing() {
            self.emit(&Event::WriteDrain {
                at: now,
                start: self.draining,
                queued: self.writes.len() as u32,
            });
        }
        let drain = self.draining || (self.reads.is_empty() && !self.writes.is_empty());
        if drain {
            if !self.try_issue(RequestKind::Write, now) {
                self.try_issue(RequestKind::Read, now);
            }
        } else if !self.try_issue(RequestKind::Read, now) && self.reads.is_empty() {
            self.try_issue(RequestKind::Write, now);
        }
    }

    /// Convenience driver: ticks cycle-by-cycle from `*now` until all queued
    /// and in-flight requests have completed (or `limit` cycles elapsed),
    /// collecting completions. Returns the completions in finish order.
    ///
    /// # Panics
    ///
    /// Panics if the controller fails to drain within `limit` cycles, which
    /// indicates a scheduling deadlock.
    pub fn run_to_drain(&mut self, now: &mut u64, limit: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        let deadline = *now + limit;
        while !(self.reads.is_empty() && self.writes.is_empty() && self.pending.is_empty()) {
            assert!(*now < deadline, "controller failed to drain within {limit} cycles");
            self.tick(*now, &mut out);
            *now += 1;
        }
        out.sort_by_key(|c| c.finish);
        out
    }

    /// Samples bank-level parallelism: a thread's request counts toward the
    /// banks working for it from the moment it is outstanding at the
    /// controller until its data transfer ends (the paper's "requests being
    /// serviced in the DRAM banks", measured per Chou et al.'s MLP
    /// definition).
    fn sample_blp(&mut self, now: u64) {
        // Per-thread bank bitmasks (banks_per_channel ≤ 64) in reusable,
        // thread-indexed buffers: O(requests + banks) per sample instead of
        // a linear scan of the pair list per request.
        let masks = &mut self.blp_masks;
        let touched = &mut self.blp_touched;
        let mut note = |thread: ThreadId, bank: usize| {
            if masks.len() <= thread.0 {
                masks.resize(thread.0 + 1, 0);
            }
            if masks[thread.0] == 0 {
                touched.push(thread.0);
            }
            masks[thread.0] |= 1 << bank;
        };
        for r in &self.reads {
            note(r.thread, r.addr.bank);
        }
        for b in 0..self.channel.bank_count() {
            if let Some(t) = self.channel.bank(b).servicing_thread(now) {
                note(t, b);
            }
        }
        let mut union = 0u64;
        for &t in self.blp_touched.iter() {
            let mask = self.blp_masks[t];
            union |= mask;
            self.stats.record_thread_blp(ThreadId(t), mask.count_ones() as usize);
            self.blp_masks[t] = 0;
        }
        self.blp_touched.clear();
        self.stats.blp.record(union.count_ones() as usize);
    }

    /// Attempts to issue one command for the given queue side. Returns true
    /// if a command was placed on the command bus.
    ///
    /// The hot path walks the queue in descending cached-priority-key order
    /// via repeated max-selection — no per-cycle sort, no virtual dispatch
    /// per comparison. The retired comparator sort is kept behind
    /// [`Controller::set_comparator_path`] as the reference implementation;
    /// both paths must make identical decisions (priority keys and
    /// [`MemoryScheduler::compare`] are both injective total orders, so
    /// there are no ties for stability to resolve).
    fn try_issue(&mut self, side: RequestKind, now: u64) -> bool {
        let is_write = side == RequestKind::Write;
        let empty = if is_write { self.writes.is_empty() } else { self.reads.is_empty() };
        if empty {
            return false;
        }
        let decision = if self.comparator_path {
            self.select_by_comparator(is_write, now)
        } else {
            self.select_by_key(is_write, now)
        };
        let Some((i, cmd)) = decision else { return false };
        self.apply(i, cmd, is_write, now);
        true
    }

    /// Recomputes the cached read priority keys from the scheduler.
    fn refresh_read_keys(&mut self, now: u64) {
        let Controller { read_keys, reads, scheduler, channel, .. } = self;
        let view = SchedView { channel, now };
        read_keys.clear();
        read_keys.extend(reads.iter().map(|r| scheduler.priority_key(r, &view)));
        self.read_keys_dirty = false;
    }

    /// The write-side FR-FCFS key (row hit first, then oldest), packed the
    /// same way as read keys: larger = drained first.
    fn write_key(hit: bool, id: u64) -> u128 {
        (u128::from(hit) << 64) | u128::from(u64::MAX - id)
    }

    /// Which banks a queued command may not close: initialized from queued
    /// read row-hits when draining writes (reads outrank all writes), then
    /// extended with the banks of higher-priority column commands during the
    /// priority walk.
    fn initial_protected_banks(&self, is_write: bool) -> u64 {
        let mut protected = 0u64;
        if is_write {
            for r in &self.reads {
                if self.channel.bank(r.addr.bank).is_row_hit(r.addr.row) {
                    protected |= 1 << r.addr.bank;
                }
            }
        }
        protected
    }

    /// Whether `req`'s next command can issue right now given the banks
    /// protected by higher-priority requests; updates `protected_banks` for
    /// the requests walked after it.
    fn ready_command(
        &self,
        req: &Request,
        is_write: bool,
        now: u64,
        protected_banks: &mut u64,
    ) -> Option<Command> {
        let bank = req.addr.bank;
        let needed = self.channel.bank(bank).needed_command(req.addr.row, is_write);
        if needed.is_column() {
            *protected_banks |= 1 << bank;
        } else if needed == CommandKind::Precharge {
            if *protected_banks & (1 << bank) != 0 {
                return None;
            }
            // Open-page grace: a recently accessed row is speculatively
            // held open in anticipation of further hits, bounded by a
            // total open time so conflicts cannot starve. Requests of
            // the current batch (marked) override the speculation —
            // batch progress outranks locality speculation just as the
            // BS rule outranks the RH rule.
            let b = self.channel.bank(bank);
            let grace = self.config.timing.t_row_grace;
            if !req.marked
                && grace > 0
                && now < b.last_column_at() + grace
                && now < b.last_activate_at() + 3 * grace
            {
                return None;
            }
        }
        let row = match needed {
            CommandKind::Precharge => self.channel.bank(bank).open_row().unwrap_or(0),
            _ => req.addr.row,
        };
        let cmd = Command {
            kind: needed,
            rank: self.channel.rank_of(bank),
            bank,
            row,
            col: req.addr.col,
            request: req.id,
        };
        self.channel.can_issue(&cmd, now).then_some(cmd)
    }

    /// Keyed selection: repeatedly pick the highest-keyed untried request
    /// and stop at the first whose command is ready. Read keys come from the
    /// event-maintained cache; write keys are computed inline (the write
    /// queue's FR-FCFS keys depend only on bank state, and writes drain in
    /// rare bursts).
    fn select_by_key(&mut self, is_write: bool, now: u64) -> Option<(usize, Command)> {
        if is_write {
            let Controller { write_keys, writes, channel, .. } = self;
            let view = SchedView { channel, now };
            write_keys.clear();
            write_keys.extend(writes.iter().map(|r| Self::write_key(view.is_row_hit(r), r.id.0)));
        } else if self.read_keys_dirty {
            self.refresh_read_keys(now);
        }
        let mut tried = std::mem::take(&mut self.tried);
        let queue = if is_write { &self.writes } else { &self.reads };
        let keys = if is_write { &self.write_keys } else { &self.read_keys };
        // Always-on (not debug_assert): a key cache that drifted out of
        // alignment with its queue silently scrambles priorities — the
        // exact failure class the key-caching contract exists to prevent.
        assert_eq!(
            keys.len(),
            queue.len(),
            "priority-key cache out of sync with the {} queue",
            if is_write { "write" } else { "read" }
        );
        tried.clear();
        tried.resize(queue.len(), false);
        let mut protected_banks = self.initial_protected_banks(is_write);
        let mut decision = None;
        let mut remaining = queue.len();
        while remaining > 0 {
            let mut best: Option<(usize, u128)> = None;
            for (i, &k) in keys.iter().enumerate() {
                if !tried[i] && best.is_none_or(|(_, bk)| k > bk) {
                    best = Some((i, k));
                }
            }
            let (i, _) = best.expect("remaining > 0 guarantees an untried request");
            tried[i] = true;
            remaining -= 1;
            if let Some(cmd) = self.ready_command(&queue[i], is_write, now, &mut protected_banks) {
                decision = Some((i, cmd));
                break;
            }
        }
        self.tried = tried;
        decision
    }

    /// Reference selection: full-queue comparator sort (scheduler-defined
    /// for reads, FR-FCFS for writes), then a walk in priority order. Kept
    /// only for validating the keyed path.
    fn select_by_comparator(&mut self, is_write: bool, now: u64) -> Option<(usize, Command)> {
        let queue = if is_write { &self.writes } else { &self.reads };
        let mut order: Vec<usize> = (0..queue.len()).collect();
        {
            let view = SchedView { channel: &self.channel, now };
            if is_write {
                order.sort_by(|&i, &j| {
                    let (a, b) = (&queue[i], &queue[j]);
                    let hit_a = view.is_row_hit(a);
                    let hit_b = view.is_row_hit(b);
                    hit_b.cmp(&hit_a).then(a.id.cmp(&b.id))
                });
            } else {
                order.sort_by(|&i, &j| self.scheduler.compare(&queue[i], &queue[j], &view));
            }
        }
        let mut protected_banks = self.initial_protected_banks(is_write);
        for &i in &order {
            if let Some(cmd) = self.ready_command(&queue[i], is_write, now, &mut protected_banks) {
                return Some((i, cmd));
            }
        }
        None
    }

    /// Issues `cmd` for the request at index `i` of the chosen queue and
    /// performs all bookkeeping (stats, checker, completion scheduling).
    fn apply(&mut self, i: usize, cmd: Command, is_write: bool, now: u64) {
        if let Some(checker) = &mut self.checker {
            checker.observe(&cmd, now).unwrap_or_else(|v| panic!("DRAM protocol violation: {v}"));
        }
        let req = if is_write { self.writes[i].clone() } else { self.reads[i].clone() };
        let mut service = None;
        if self.touched.insert(req.id) {
            match cmd.kind {
                CommandKind::Read | CommandKind::Write => self.stats.row_hits += 1,
                CommandKind::Activate => self.stats.row_closed += 1,
                CommandKind::Precharge => self.stats.row_conflicts += 1,
                CommandKind::Refresh => unreachable!("refresh never serves a request"),
            }
            service = Some(match cmd.kind {
                CommandKind::Read | CommandKind::Write => ServiceClass::Hit,
                CommandKind::Activate => ServiceClass::Closed,
                _ => ServiceClass::Conflict,
            });
            if !is_write {
                self.stats.record_read_category(req.thread, cmd.kind);
            }
        }
        let data = self.channel.issue(&cmd, req.thread, now);
        if self.observing() {
            self.emit(&Event::CommandIssued {
                at: now,
                request: req.id.0,
                thread: req.thread.0,
                kind: obs_cmd_kind(cmd.kind).expect("refresh never reaches apply"),
                rank: cmd.rank,
                bank: cmd.bank,
                row: cmd.row,
                col: cmd.col,
                marked: req.marked,
                service,
                data_end: data.map(|(_, end)| end),
            });
        }
        self.scheduler.on_command(&cmd, &req, now);
        self.stats.commands_issued += 1;
        // Activate/precharge change a bank's open row, which feeds every
        // row-hit-aware priority key; invalidate the read-key cache.
        // Column commands leave bank state untouched (any priority change
        // they trigger inside the scheduler must surface via pre_schedule).
        if matches!(cmd.kind, CommandKind::Activate | CommandKind::Precharge) {
            self.read_keys_dirty = true;
        }
        if let Some((_, end)) = data {
            let finish = end + self.config.timing.front_latency;
            self.touched.remove(&req.id);
            if self.observing() {
                self.emit(&Event::Completed {
                    at: now,
                    request: req.id.0,
                    thread: req.thread.0,
                    write: is_write,
                    arrival: req.arrival,
                    finish,
                });
            }
            let completion = Completion {
                request: req.id,
                thread: req.thread,
                kind: req.kind,
                arrival: req.arrival,
                finish,
            };
            self.pending.push(completion);
            if is_write {
                self.writes.swap_remove(i);
                self.stats.writes_completed += 1;
            } else {
                self.scheduler.on_complete(&req, now);
                self.reads.swap_remove(i);
                // Mirror the removal in the parallel key cache so clean keys
                // stay index-aligned with `reads`.
                if !self.read_keys_dirty {
                    self.read_keys.swap_remove(i);
                }
                self.stats.reads_completed += 1;
                self.stats.record_read_latency(finish - req.arrival, req.thread);
            }
        }
    }
}

impl parbs_snap::Snap for Completion {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.request);
        w.put(&self.thread);
        w.put(&self.kind);
        w.u64(self.arrival);
        w.u64(self.finish);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(Completion {
            request: r.get()?,
            thread: r.get()?,
            kind: r.get()?,
            arrival: r.u64()?,
            finish: r.u64()?,
        })
    }
}

impl Controller {
    /// True if this controller can be checkpointed: protocol checkers and
    /// observability sinks hold state the snapshot format does not cover, so
    /// their presence makes [`Controller::save_state`] and
    /// [`Controller::restore_state`] fail with
    /// [`parbs_snap::SnapError::Unsupported`].
    #[must_use]
    pub fn snapshot_supported(&self) -> bool {
        self.checker.is_none() && self.sink.is_none()
    }

    /// Serializes the controller's mutable state: both request buffers,
    /// in-flight completions, statistics, write-drain hysteresis, refresh
    /// bookkeeping, channel timing windows and the scheduling policy's
    /// internal state. Scratch caches (priority keys, selection buffers) are
    /// excluded — they are rebuilt on demand after restore.
    ///
    /// # Errors
    ///
    /// [`parbs_snap::SnapError::Unsupported`] when a protocol checker or an
    /// event sink is attached (see [`Controller::snapshot_supported`]).
    pub fn save_state(&self, w: &mut parbs_snap::SnapWriter) -> Result<(), parbs_snap::SnapError> {
        if !self.snapshot_supported() {
            return Err(parbs_snap::SnapError::Unsupported(
                "controller has a protocol checker or event sink attached",
            ));
        }
        w.put(&self.reads);
        w.put(&self.writes);
        w.put(&self.pending);
        w.put(&self.stats);
        // HashSet iteration order is nondeterministic; canonicalize.
        let mut touched: Vec<RequestId> = self.touched.iter().copied().collect();
        touched.sort_unstable();
        w.put(&touched);
        w.bool(self.draining);
        w.put(&self.last_refresh);
        self.channel.save_state(w);
        self.scheduler.save_state(w);
        Ok(())
    }

    /// Restores state captured by [`Controller::save_state`] into a
    /// controller built with the same configuration and scheduler kind. The
    /// cached priority keys are invalidated, not restored: the first
    /// scheduling slot after resume recomputes them from the restored
    /// scheduler state, so the command stream continues bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`parbs_snap::SnapError::Unsupported`] when a checker or sink is
    /// attached; decoding and shape-mismatch errors propagate.
    pub fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        if !self.snapshot_supported() {
            return Err(parbs_snap::SnapError::Unsupported(
                "controller has a protocol checker or event sink attached",
            ));
        }
        self.reads = r.get()?;
        self.writes = r.get()?;
        self.pending = r.get()?;
        self.stats = r.get()?;
        let touched: Vec<RequestId> = r.get()?;
        self.touched = touched.into_iter().collect();
        self.draining = r.bool()?;
        let last_refresh: Vec<u64> = r.get()?;
        if last_refresh.len() != self.last_refresh.len() {
            return Err(parbs_snap::SnapError::Mismatch {
                what: "controller rank count",
                expected: self.last_refresh.len() as u64,
                found: last_refresh.len() as u64,
            });
        }
        self.last_refresh = last_refresh;
        self.channel.restore_state(r)?;
        self.scheduler.restore_state(r)?;
        self.read_keys_dirty = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FcfsScheduler, LineAddr};

    fn read(id: u64, thread: usize, bank: usize, row: u64, col: u64, at: u64) -> Request {
        Request::new(
            id,
            ThreadId(thread),
            LineAddr { channel: 0, bank, row, col },
            RequestKind::Read,
            at,
        )
    }

    fn drain(ctrl: &mut Controller) -> Vec<Completion> {
        let mut now = 0;
        ctrl.run_to_drain(&mut now, 1_000_000)
    }

    #[test]
    fn single_closed_read_latency() {
        let mut ctrl =
            Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
        ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
        let done = drain(&mut ctrl);
        assert_eq!(done.len(), 1);
        // ACT@0, RD@tRCD, data end tRCD+tCL+tBURST, + front latency.
        let t = DramConfig::default().timing;
        assert_eq!(done[0].finish, t.t_rcd + t.t_cl + t.t_burst + t.front_latency);
        assert_eq!(ctrl.stats().row_closed, 1);
    }

    #[test]
    fn row_hit_second_read_is_faster() {
        let mut ctrl =
            Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
        ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
        ctrl.try_enqueue(read(1, 0, 0, 1, 1, 0)).unwrap();
        let done = drain(&mut ctrl);
        assert_eq!(done.len(), 2);
        assert_eq!(ctrl.stats().row_hits, 1);
        assert_eq!(ctrl.stats().row_closed, 1);
        let gap = done[1].finish - done[0].finish;
        assert!(gap <= 60, "row hit should pipeline behind the first read, gap = {gap}");
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut ctrl =
            Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
        ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
        ctrl.try_enqueue(read(1, 0, 0, 2, 0, 0)).unwrap();
        let done = drain(&mut ctrl);
        assert_eq!(ctrl.stats().row_conflicts, 1);
        let t = DramConfig::default().timing;
        // Second request must wait ≥ tRAS before its precharge can begin.
        assert!(done[1].finish >= t.t_ras + t.t_rp + t.t_rcd + t.t_cl);
    }

    #[test]
    fn two_banks_overlap_fig1() {
        // Figure 1: two requests of one thread to different banks overlap,
        // exposing roughly a single bank-access latency to the core.
        let mut ctrl =
            Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
        ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
        ctrl.try_enqueue(read(1, 0, 1, 1, 0, 0)).unwrap();
        let done = drain(&mut ctrl);
        let t = DramConfig::default().timing;
        let single = t.t_rcd + t.t_cl + t.t_burst + t.front_latency;
        assert_eq!(done[0].finish, single);
        // The second finishes one burst later, NOT one full access later.
        assert!(done[1].finish <= single + t.t_burst + DRAM_CYCLE);
    }

    #[test]
    fn full_read_buffer_rejects() {
        let cfg = DramConfig { request_buffer_cap: 2, ..DramConfig::default() };
        let mut ctrl = Controller::new(cfg, Box::new(FcfsScheduler::new()));
        ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
        ctrl.try_enqueue(read(1, 0, 0, 1, 1, 0)).unwrap();
        let err = ctrl.try_enqueue(read(2, 0, 0, 1, 2, 0)).unwrap_err();
        assert_eq!(err.kind, RequestKind::Read);
        assert!(!ctrl.can_accept_read());
    }

    #[test]
    fn writes_wait_for_reads() {
        let mut ctrl =
            Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
        let w = Request::new(
            0,
            ThreadId(0),
            LineAddr { channel: 0, bank: 0, row: 9, col: 0 },
            RequestKind::Write,
            0,
        );
        ctrl.try_enqueue(w).unwrap();
        ctrl.try_enqueue(read(1, 0, 1, 1, 0, 0)).unwrap();
        let done = drain(&mut ctrl);
        assert_eq!(done.len(), 2);
        let read_done = done.iter().find(|c| c.kind == RequestKind::Read).unwrap();
        let write_done = done.iter().find(|c| c.kind == RequestKind::Write).unwrap();
        assert!(read_done.finish < write_done.finish, "read must be prioritized over write");
    }

    #[test]
    fn lower_priority_conflict_cannot_precharge_hot_row() {
        // One thread hammers row hits on bank 0; an older row-conflict
        // request from another thread must not close the row out from under
        // an FR-FCFS-style policy that ranks hits first. With FCFS (pure
        // age order) the conflict request IS higher priority, so this test
        // uses the protection logic only as far as: a row-hit that is
        // higher-priority protects its bank.
        let mut ctrl =
            Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
        ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
        let mut now = 0;
        let done = ctrl.run_to_drain(&mut now, 100_000);
        assert_eq!(done.len(), 1);
        // Row 1 is still open; a hit (younger) and a conflict (older is
        // impossible now) — enqueue hit first so FCFS ranks it higher.
        ctrl.try_enqueue(read(1, 0, 0, 1, 1, now)).unwrap();
        ctrl.try_enqueue(read(2, 1, 0, 2, 0, now)).unwrap();
        let done = ctrl.run_to_drain(&mut now, 1_000_000);
        assert_eq!(done[0].request, RequestId(1), "hit serviced before conflict");
        assert_eq!(ctrl.stats().row_hits, 1);
    }

    #[test]
    fn event_sink_sees_the_full_request_lifecycle() {
        use parbs_obs::CollectSink;
        let mut ctrl =
            Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
        ctrl.set_event_sink(Box::new(CollectSink::new()));
        ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
        ctrl.try_enqueue(read(1, 1, 0, 2, 0, 0)).unwrap();
        let done = drain(&mut ctrl);
        assert_eq!(done.len(), 2);
        let sink = ctrl.take_event_sink().expect("sink was attached");
        let Ok(collect) = parbs_obs::downcast_sink::<CollectSink>(sink) else {
            panic!("sink is the CollectSink we attached");
        };
        let events = collect.into_events();
        let count = |name: &str| events.iter().filter(|e| e.name() == name).count();
        assert_eq!(count("enqueued"), 2);
        assert_eq!(count("completed"), 2);
        // Req 0 closed-bank (ACT+RD), req 1 conflict (PRE+ACT+RD).
        assert_eq!(count("command_issued"), 5);
        assert!(count("bus_sample") > 0, "occupancy changes were sampled");
        // Events are non-decreasing in time.
        let ats: Vec<u64> = events.iter().map(parbs_obs::Event::at).collect();
        assert!(ats.windows(2).all(|w| w[0] <= w[1]), "{ats:?}");
        // Service classification rides on the first command of each request.
        let classes: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                parbs_obs::Event::CommandIssued { service: Some(c), .. } => Some(*c),
                _ => None,
            })
            .collect();
        assert_eq!(classes, [parbs_obs::ServiceClass::Closed, parbs_obs::ServiceClass::Conflict]);
    }

    #[test]
    fn command_traces_ride_the_event_bus() {
        use crate::CommandTraceSink;
        let mut ctrl = Controller::new(DramConfig::default(), Box::new(FcfsScheduler::new()));
        ctrl.set_event_sink(Box::new(CommandTraceSink::new()));
        ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
        drain(&mut ctrl);
        let sink = ctrl.take_event_sink().expect("sink was attached");
        let Ok(trace_sink) = parbs_obs::downcast_sink::<CommandTraceSink>(sink) else {
            panic!("sink is the CommandTraceSink we attached");
        };
        let via_bus = trace_sink.into_trace();
        assert_eq!(via_bus.len(), 2, "ACT + RD");

        // No sink: take_event_sink returns nothing, nothing was recorded.
        let mut ctrl = Controller::new(DramConfig::default(), Box::new(FcfsScheduler::new()));
        ctrl.try_enqueue(read(0, 0, 0, 1, 0, 0)).unwrap();
        drain(&mut ctrl);
        assert!(ctrl.take_event_sink().is_none());
    }

    #[test]
    fn two_rank_controller_services_both_ranks_under_the_checker() {
        let mut cfg = DramConfig::default();
        cfg.geometry.ranks_per_channel = 2;
        let banks = cfg.banks_per_channel();
        let mut ctrl = Controller::with_checker(cfg, Box::new(FcfsScheduler::new()));
        for id in 0..32 {
            let bank = (id as usize) % banks;
            ctrl.try_enqueue(read(id, (id % 4) as usize, bank, id / 4, id % 32, 0)).unwrap();
        }
        let done = drain(&mut ctrl);
        assert_eq!(done.len(), 32);
        assert_eq!(ctrl.channel().rank_count(), 2);
        assert_eq!(ctrl.stats().reads_completed, 32);
    }

    #[test]
    fn run_to_drain_reports_all_requests() {
        let mut ctrl =
            Controller::with_checker(DramConfig::default(), Box::new(FcfsScheduler::new()));
        for id in 0..20 {
            ctrl.try_enqueue(read(id, (id % 4) as usize, (id % 8) as usize, id / 8, id % 32, 0))
                .unwrap();
        }
        let done = drain(&mut ctrl);
        assert_eq!(done.len(), 20);
        assert_eq!(ctrl.stats().reads_completed, 20);
        assert!(ctrl.stats().worst_case_latency > 0);
    }
}
