//! DRAM commands issued on a channel's command bus.

use crate::RequestId;

/// The four row/column commands of an SDRAM protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CommandKind {
    /// Open (`ACT`) a row into the bank's row buffer.
    Activate,
    /// Column read (`RD`) from the open row.
    Read,
    /// Column write (`WR`) to the open row.
    Write,
    /// Close (`PRE`) the bank's open row.
    Precharge,
    /// All-bank refresh (`REF`) of one rank; implies a precharge-all on
    /// that rank. Issued autonomously by the controller every `t_refi`
    /// per rank, not by schedulers.
    Refresh,
}

impl CommandKind {
    /// True for the column commands (`RD`/`WR`) that occupy the data bus.
    #[must_use]
    pub fn is_column(self) -> bool {
        matches!(self, CommandKind::Read | CommandKind::Write)
    }
}

impl Command {
    /// The all-bank refresh command for one rank (no target request).
    /// `bank` records the rank's first global bank index purely for
    /// self-description; refresh applies to every bank of the rank.
    #[must_use]
    pub fn refresh(rank: usize, request_sentinel: crate::RequestId) -> Self {
        Command {
            kind: CommandKind::Refresh,
            rank,
            bank: 0,
            row: 0,
            col: 0,
            request: request_sentinel,
        }
    }
}

/// A DRAM command together with its target coordinates, as placed on the
/// command bus. `row` is meaningful for every kind (for `PRE` it records the
/// row being closed, for column commands the open row being accessed) so that
/// protocol checkers and traces are self-describing. `bank` is the
/// channel-global index and `rank` the owning rank — for non-refresh
/// commands the two are redundant (`rank == bank / banks_per_rank`, a
/// consistency the protocol checker enforces); for refresh, `rank` alone
/// selects the target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Command {
    /// Which command.
    pub kind: CommandKind,
    /// Target rank within the channel.
    pub rank: usize,
    /// Target bank within the channel (channel-global index).
    pub bank: usize,
    /// Target row (see type-level docs).
    pub row: u64,
    /// Target column for column commands, 0 otherwise.
    pub col: u64,
    /// The request this command serves.
    pub request: RequestId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_rd_wr_are_column_commands() {
        assert!(CommandKind::Read.is_column());
        assert!(CommandKind::Write.is_column());
        assert!(!CommandKind::Activate.is_column());
        assert!(!CommandKind::Precharge.is_column());
        assert!(!CommandKind::Refresh.is_column());
    }
}
