//! Sparse per-thread state storage for schedulers that must scale past a
//! handful of closed-loop cores.
//!
//! Every scheduler in this workspace keeps some per-thread state — PAR-BS
//! ranks and mark budgets, ATLAS attained-service totals, BLISS blacklist
//! bits, STFM interference estimates, NFQ share weights. The historical
//! representation was a dense `Vec` indexed by `ThreadId`, grown with
//! `resize(thread.0 + 1, default)`: correct for 4–16 contiguous core ids,
//! but catastrophic for a datacenter-flow frontend where one requester with
//! id 50 000 forces a 50 001-entry allocation and every "iterate all
//! threads" loop to scan 50 001 slots.
//!
//! [`ThreadTable`] replaces that pattern with a hashed map plus a sorted
//! activity index:
//!
//! * point operations ([`ThreadTable::get`], [`ThreadTable::get_mut`],
//!   [`ThreadTable::get_or_default`], [`ThreadTable::contains`]) are O(1)
//!   expected — a hash lookup, independent of the largest id ever seen;
//! * iteration ([`ThreadTable::iter_active`],
//!   [`ThreadTable::for_each_mut`]) visits **only registered threads, in
//!   ascending id order** — the same visiting order as a dense
//!   `for t in 0..len` loop restricted to the ids that actually exist, so a
//!   migrated scheduler makes byte-identical decisions;
//! * idle requesters can be dropped ([`ThreadTable::retire`],
//!   [`ThreadTable::retain`]) so long-running open-loop simulations do not
//!   accumulate state for every flow that ever existed.
//!
//! Registration (first insert of a new id) pays an O(log n) search plus an
//! O(n) shift of the activity index; it happens once per thread lifetime,
//! not per decision, so the per-cycle scheduler cost stays O(active
//! threads) — the property the flow frontend's 10 000-requester sweeps
//! rely on.

use std::collections::HashMap;

use crate::ThreadId;

/// A sparse map from [`ThreadId`] to per-thread scheduler state `T`.
///
/// Point lookups hash; iteration walks a sorted index of registered ids so
/// the visiting order is deterministic (ascending id) regardless of
/// insertion order or hasher seed.
///
/// # Examples
///
/// ```
/// use parbs_dram::{ThreadId, ThreadTable};
///
/// let mut loads: ThreadTable<u32> = ThreadTable::new();
/// *loads.get_or_default(ThreadId(40_000)) += 3;
/// *loads.get_or_default(ThreadId(7)) += 1;
/// assert_eq!(loads.len(), 2); // not 40_001
/// let seen: Vec<(usize, u32)> =
///     loads.iter_active().map(|(t, &v)| (t.0, v)).collect();
/// assert_eq!(seen, [(7, 1), (40_000, 3)]); // ascending id order
/// assert_eq!(loads.retire(ThreadId(40_000)), Some(3));
/// assert_eq!(loads.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThreadTable<T> {
    entries: HashMap<usize, T>,
    /// Registered thread ids, ascending. Kept in lockstep with `entries`.
    order: Vec<usize>,
}

impl<T> ThreadTable<T> {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        ThreadTable { entries: HashMap::new(), order: Vec::new() }
    }

    /// Number of registered threads (ids holding state), **not** the
    /// largest id.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if no thread holds state.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// True if `thread` is registered.
    #[must_use]
    pub fn contains(&self, thread: ThreadId) -> bool {
        self.entries.contains_key(&thread.0)
    }

    /// The state of `thread`, if registered.
    #[must_use]
    pub fn get(&self, thread: ThreadId) -> Option<&T> {
        self.entries.get(&thread.0)
    }

    /// Mutable state of `thread`, if registered. Never registers.
    #[must_use]
    pub fn get_mut(&mut self, thread: ThreadId) -> Option<&mut T> {
        self.entries.get_mut(&thread.0)
    }

    /// Registers `thread` with `value`, returning the previous state if it
    /// was already registered.
    pub fn insert(&mut self, thread: ThreadId, value: T) -> Option<T> {
        let old = self.entries.insert(thread.0, value);
        if old.is_none() {
            let at = self.order.partition_point(|&id| id < thread.0);
            self.order.insert(at, thread.0);
        }
        old
    }

    /// Removes `thread` from the table, returning its state — the
    /// retire-on-idle hook for open-loop sources whose requesters come and
    /// go.
    pub fn retire(&mut self, thread: ThreadId) -> Option<T> {
        let old = self.entries.remove(&thread.0);
        if old.is_some() {
            let at = self.order.partition_point(|&id| id < thread.0);
            // Always-on: `entries` and `order` disagreeing means per-thread
            // state survives retirement and leaks into the next requester
            // assigned this id.
            assert_eq!(self.order.get(at), Some(&thread.0), "thread table order out of sync");
            self.order.remove(at);
        }
        old
    }

    /// Drops every entry (O(registered), not O(max id)).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// Registered thread ids, ascending.
    #[must_use]
    pub fn ids(&self) -> &[usize] {
        &self.order
    }

    /// Iterates registered threads in ascending id order — the sparse
    /// equivalent of `for t in 0..len` over a dense table, so migrated
    /// schedulers keep their visiting order (and therefore their
    /// tie-breaks) bit-for-bit.
    pub fn iter_active(&self) -> impl Iterator<Item = (ThreadId, &T)> + '_ {
        self.order.iter().map(|&id| {
            (ThreadId(id), self.entries.get(&id).expect("order and entries stay in lockstep"))
        })
    }

    /// Calls `f` for every registered thread in ascending id order with
    /// mutable access to its state.
    pub fn for_each_mut(&mut self, mut f: impl FnMut(ThreadId, &mut T)) {
        for &id in &self.order {
            f(ThreadId(id), self.entries.get_mut(&id).expect("order and entries stay in lockstep"));
        }
    }

    /// Keeps only the entries for which `f` returns true (ascending id
    /// order) — bulk retirement for idle-sweep policies.
    pub fn retain(&mut self, mut f: impl FnMut(ThreadId, &mut T) -> bool) {
        let entries = &mut self.entries;
        self.order.retain(|&id| {
            let keep =
                f(ThreadId(id), entries.get_mut(&id).expect("order and entries stay in lockstep"));
            if !keep {
                entries.remove(&id);
            }
            keep
        });
    }
}

impl<T: Default> ThreadTable<T> {
    /// Mutable state of `thread`, registering it with `T::default()` on
    /// first sight — the sparse replacement for
    /// `vec.resize(thread.0 + 1, default); &mut vec[thread.0]`, except only
    /// the touched id is materialized.
    pub fn get_or_default(&mut self, thread: ThreadId) -> &mut T {
        if !self.entries.contains_key(&thread.0) {
            let at = self.order.partition_point(|&id| id < thread.0);
            self.order.insert(at, thread.0);
        }
        self.entries.entry(thread.0).or_default()
    }
}

impl<T> FromIterator<(ThreadId, T)> for ThreadTable<T> {
    fn from_iter<I: IntoIterator<Item = (ThreadId, T)>>(iter: I) -> Self {
        let mut table = ThreadTable::new();
        for (thread, value) in iter {
            table.insert(thread, value);
        }
        table
    }
}

impl<T: parbs_snap::Snap> parbs_snap::Snap for ThreadTable<T> {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        // `order` is sorted ascending and in lockstep with `entries`, so
        // walking it gives a canonical, hasher-independent byte stream.
        w.usize(self.order.len());
        for &id in &self.order {
            w.usize(id);
            self.entries.get(&id).expect("order and entries stay in lockstep").save(w);
        }
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        let len = r.seq()?;
        let mut table = ThreadTable::new();
        for _ in 0..len {
            let id = r.usize()?;
            let value = T::load(r)?;
            table.insert(ThreadId(id), value);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_ops_register_only_touched_ids() {
        let mut t: ThreadTable<u64> = ThreadTable::new();
        assert!(t.is_empty());
        *t.get_or_default(ThreadId(1 << 20)) = 9;
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(ThreadId(1 << 20)), Some(&9));
        assert_eq!(t.get(ThreadId(0)), None);
        assert!(!t.contains(ThreadId(5)));
    }

    #[test]
    fn iteration_is_ascending_regardless_of_insertion_order() {
        let mut t: ThreadTable<i32> = ThreadTable::new();
        for id in [900, 3, 40_000, 0, 17] {
            t.insert(ThreadId(id), id as i32);
        }
        let ids: Vec<usize> = t.iter_active().map(|(t, _)| t.0).collect();
        assert_eq!(ids, [0, 3, 17, 900, 40_000]);
        assert_eq!(t.ids(), [0, 3, 17, 900, 40_000]);
    }

    #[test]
    fn insert_replaces_and_returns_old() {
        let mut t: ThreadTable<&str> = ThreadTable::new();
        assert_eq!(t.insert(ThreadId(4), "a"), None);
        assert_eq!(t.insert(ThreadId(4), "b"), Some("a"));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn retire_removes_and_returns_state() {
        let mut t: ThreadTable<u8> = ThreadTable::new();
        t.insert(ThreadId(2), 20);
        t.insert(ThreadId(7), 70);
        assert_eq!(t.retire(ThreadId(2)), Some(20));
        assert_eq!(t.retire(ThreadId(2)), None);
        assert_eq!(t.ids(), [7]);
    }

    #[test]
    fn for_each_mut_and_retain_walk_ascending() {
        let mut t: ThreadTable<u32> = ThreadTable::new();
        for id in [5, 1, 9] {
            t.insert(ThreadId(id), 0);
        }
        let mut seen = Vec::new();
        t.for_each_mut(|id, v| {
            *v = id.0 as u32;
            seen.push(id.0);
        });
        assert_eq!(seen, [1, 5, 9]);
        t.retain(|id, _| id.0 != 5);
        assert_eq!(t.ids(), [1, 9]);
        assert_eq!(t.get(ThreadId(5)), None);
    }

    #[test]
    fn clear_empties_everything() {
        let mut t: ThreadTable<u8> = (0..10).map(|i| (ThreadId(i * 100), 1)).collect();
        assert_eq!(t.len(), 10);
        t.clear();
        assert!(t.is_empty());
        assert!(t.iter_active().next().is_none());
    }
}
