//! Memory requests and their identifiers.

use crate::LineAddr;

/// Identifies the hardware thread (core) that issued a request.
///
/// The paper assumes one thread per core and uses the terms interchangeably;
/// so do we.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ThreadId(pub usize);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Globally unique, monotonically increasing request identifier. Because ids
/// are assigned in arrival order, comparing ids implements the paper's
/// oldest-first (FCFS) tie-breaking rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RequestId(pub u64);

/// Whether a request reads from or writes to DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RequestKind {
    /// A load miss; blocks the issuing core's commit when it reaches the
    /// head of the instruction window, so reads are performance-critical.
    Read,
    /// A writeback; posted, never blocks commit, drained opportunistically.
    Write,
}

/// One DRAM request in the memory request buffer.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Request {
    /// Unique id, assigned in arrival order.
    pub id: RequestId,
    /// The thread (core) that generated the request.
    pub thread: ThreadId,
    /// Decoded DRAM location.
    pub addr: LineAddr,
    /// Read or write.
    pub kind: RequestKind,
    /// Processor cycle at which the request entered the request buffer.
    pub arrival: u64,
    /// Whether the request belongs to the current batch (PAR-BS "marked"
    /// bit). Schedulers other than PAR-BS ignore this field; it lives on the
    /// request because the paper stores it in the request buffer (Table 1).
    pub marked: bool,
    /// System-software priority level of the issuing thread (1 = highest).
    /// `None` encodes the paper's lowest, purely-opportunistic level *L*.
    pub priority_level: Option<u8>,
}

impl Request {
    /// Creates a read or write request with default (equal) thread priority.
    #[must_use]
    pub fn new(id: u64, thread: ThreadId, addr: LineAddr, kind: RequestKind, arrival: u64) -> Self {
        Request {
            id: RequestId(id),
            thread,
            addr,
            kind,
            arrival,
            marked: false,
            priority_level: Some(1),
        }
    }

    /// True if this is a read (load) request.
    #[must_use]
    pub fn is_read(&self) -> bool {
        self.kind == RequestKind::Read
    }
}

impl parbs_snap::Snap for ThreadId {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.usize(self.0);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(ThreadId(r.usize()?))
    }
}

impl parbs_snap::Snap for RequestId {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.0);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(RequestId(r.u64()?))
    }
}

impl parbs_snap::Snap for RequestKind {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u8(match self {
            RequestKind::Read => 0,
            RequestKind::Write => 1,
        });
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        match r.u8()? {
            0 => Ok(RequestKind::Read),
            1 => Ok(RequestKind::Write),
            t => Err(parbs_snap::SnapError::BadTag { what: "request kind", value: u64::from(t) }),
        }
    }
}

impl parbs_snap::Snap for Request {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.id);
        w.put(&self.thread);
        w.put(&self.addr);
        w.put(&self.kind);
        w.u64(self.arrival);
        w.bool(self.marked);
        w.put(&self.priority_level);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(Request {
            id: r.get()?,
            thread: r.get()?,
            addr: r.get()?,
            kind: r.get()?,
            arrival: r.u64()?,
            marked: r.bool()?,
            priority_level: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_order_by_age() {
        let a = RequestId(1);
        let b = RequestId(2);
        assert!(a < b, "smaller id = older request");
    }

    #[test]
    fn new_request_is_unmarked_equal_priority() {
        let r = Request::new(3, ThreadId(1), LineAddr::default(), RequestKind::Read, 10);
        assert!(!r.marked);
        assert_eq!(r.priority_level, Some(1));
        assert!(r.is_read());
        assert_eq!(r.arrival, 10);
    }

    #[test]
    fn thread_id_displays_compactly() {
        assert_eq!(ThreadId(3).to_string(), "T3");
    }
}
