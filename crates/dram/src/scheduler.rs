//! The pluggable memory-scheduler interface.
//!
//! A scheduler imposes a priority order on the queued read requests; the
//! controller issues the next required DRAM command of the highest-priority
//! request whose command is ready. This mirrors how "modern FR-FCFS based
//! controllers already implement prioritization policies — each DRAM request
//! is assigned a priority and the DRAM command belonging to the highest
//! priority request is scheduled among all ready commands" (Section 6), which
//! is exactly the hook PAR-BS, NFQ and STFM extend.

use std::cmp::Ordering;

use crate::{
    Channel, Command, FieldSemantic, KeyField, KeyLayout, LivenessContract, LivenessPolicy,
    Request, StarvationClaim, ThreadId,
};

/// Read-only view of the channel state handed to schedulers during
/// prioritization.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// The channel whose requests are being scheduled.
    pub channel: &'a Channel,
    /// Current processor cycle.
    pub now: u64,
}

impl SchedView<'_> {
    /// True if `req` would currently be a row hit.
    #[must_use]
    pub fn is_row_hit(&self, req: &Request) -> bool {
        self.channel.bank(req.addr.bank).is_row_hit(req.addr.row)
    }

    /// The row currently open in `bank`, if any.
    #[must_use]
    pub fn open_row(&self, bank: usize) -> Option<u64> {
        self.channel.bank(bank).open_row()
    }
}

/// A DRAM scheduling policy.
///
/// Implementations are driven by the [`crate::Controller`]:
///
/// 1. [`MemoryScheduler::on_arrival`] /
///    [`MemoryScheduler::on_complete`] track buffer contents;
/// 2. once per DRAM cycle, [`MemoryScheduler::pre_schedule`] may mutate
///    policy metadata stored on the requests (e.g. PAR-BS marking) and
///    recompute internal state (ranks, virtual times, slowdowns);
/// 3. [`MemoryScheduler::priority_key`] assigns each request a packed
///    priority; the controller caches the keys and services the
///    highest-keyed ready request. [`MemoryScheduler::compare`] is the
///    equivalent pairwise order, retained as the reference/verification
///    path.
///
/// # Key-caching contract
///
/// The controller recomputes cached keys only on events: a request arrival,
/// a bank-state-changing command (activate, precharge, refresh), external
/// scheduler mutation, and whenever `pre_schedule` returns `true`. A policy
/// whose priorities can change for any *other* reason — the passage of time
/// (e.g. a row-capture window expiring) or state mutated in
/// [`MemoryScheduler::on_command`] / [`MemoryScheduler::on_complete`] that
/// feeds `priority_key` — MUST detect that change in its next
/// `pre_schedule` call and return `true` there, or the controller will keep
/// scheduling on stale keys.
///
/// The controller never reorders writes through this trait; reads are
/// prioritized over writes and writes drain in FR-FCFS order (Section 7.2).
pub trait MemoryScheduler {
    /// Short display name ("FR-FCFS", "PAR-BS", ...).
    fn name(&self) -> &str;

    /// A new read request entered the request buffer.
    fn on_arrival(&mut self, req: &Request, now: u64) {
        let _ = (req, now);
    }

    /// A read request left the buffer (its column command issued).
    fn on_complete(&mut self, req: &Request, now: u64) {
        let _ = (req, now);
    }

    /// Called once per scheduling slot before prioritization. `queue` is the
    /// read request buffer; schedulers may mutate per-request policy state
    /// (such as the `marked` bit) but must not add or remove requests.
    ///
    /// Returns `true` if request priorities may have changed since the last
    /// call for any reason the controller cannot observe itself (per-request
    /// metadata mutated here, internal rank/mode recomputation, a
    /// time-dependent priority window expiring). Returning `true`
    /// conservatively is always correct; returning `false` after a change is
    /// a staleness bug. The default does nothing and reports no change.
    fn pre_schedule(&mut self, queue: &mut [Request], view: &SchedView<'_>) -> bool {
        let _ = (queue, view);
        false
    }

    /// The packed scheduling priority of one queued read request: the
    /// controller services the request with the **largest** key whose DRAM
    /// command is ready.
    ///
    /// Must order exactly like [`MemoryScheduler::compare`]
    /// (`key(a) > key(b)` ⇔ `compare(a, b) == Ordering::Less`) and must be
    /// injective over distinct queued requests (embed the request id, or a
    /// strictly-id-derived field, in the low bits) so the order is total.
    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128;

    /// Priority order between two queued read requests: `Ordering::Less`
    /// means `a` is scheduled **before** `b` (i.e. `a` has higher priority),
    /// matching the contract of `slice::sort_by`. Must be a total order for
    /// the current scheduler state and must agree with
    /// [`MemoryScheduler::priority_key`].
    ///
    /// The controller only calls this on its comparator reference path
    /// (see `Controller::set_comparator_path`), which exists to validate
    /// keyed selection; the hot path uses cached keys.
    fn compare(&self, a: &Request, b: &Request, view: &SchedView<'_>) -> Ordering {
        self.priority_key(b, view).cmp(&self.priority_key(a, view))
    }

    /// The declared bit layout of [`MemoryScheduler::priority_key`], for
    /// static analysis: `parbs-analyze check-keys` validates the structural
    /// invariants ([`KeyLayout::validate`]) and cross-checks the packed key
    /// against the declaration over enumerated scheduler states. Returning
    /// `None` (the default) opts the policy out of key analysis; every
    /// shipped scheduler declares its layout.
    fn key_layout(&self) -> Option<&'static KeyLayout> {
        None
    }

    /// The declared liveness contract of this policy, for static analysis:
    /// `parbs-analyze check-liveness` model-checks the declared
    /// [`StarvationClaim`] under the declared [`LivenessPolicy`] class on a
    /// tiny geometry, proving a concrete starvation bound or exhibiting a
    /// minimal starvation lasso. Returning `None` (the default) opts the
    /// policy out of liveness analysis; every shipped scheduler declares a
    /// contract. Unlike [`MemoryScheduler::key_layout`] the value is built
    /// per call — policy parameters (the Marking-Cap, the blacklist
    /// threshold) live in runtime configuration, not statics.
    fn liveness_contract(&self) -> Option<LivenessContract> {
        None
    }

    /// Feedback from the cores: `stall_cycles[t]` processor cycles of
    /// memory-related stall accrued by thread `t` since the previous call.
    /// Used by stall-time-based policies (STFM); default is to ignore it.
    fn on_stall_cycles(&mut self, stall_cycles: &[u64], now: u64) {
        let _ = (stall_cycles, now);
    }

    /// A DRAM command was issued for `req`. Policies that track interference
    /// (STFM) or bank ownership (NFQ) observe the command stream here.
    fn on_command(&mut self, cmd: &Command, req: &Request, now: u64) {
        let _ = (cmd, req, now);
    }

    /// Per-thread share/weight configuration (NFQ shares, STFM weights,
    /// PAR-BS priority levels are set per-request instead). Default: ignore.
    fn set_thread_weight(&mut self, thread: ThreadId, weight: f64) {
        let _ = (thread, weight);
    }

    /// One-line, human-readable internal state summary for diagnostics
    /// (e.g. PAR-BS batch statistics). Default: empty.
    fn debug_summary(&self) -> String {
        String::new()
    }

    /// Enables or disables observability-event buffering. The controller
    /// calls this when an event sink is attached to or removed from it;
    /// while enabled, policies with observable internal transitions (batch
    /// formation, marking, ranking) buffer [`parbs_obs::Event`]s for the
    /// controller to collect via [`MemoryScheduler::drain_events`]. The
    /// default (for policies with nothing to report) ignores it.
    fn set_observing(&mut self, enabled: bool) {
        let _ = enabled;
    }

    /// Moves any buffered observability events into `out`, preserving
    /// emission order. Called by the controller once per scheduling slot
    /// (after [`MemoryScheduler::pre_schedule`]) while a sink is attached.
    /// The default has nothing to drain.
    fn drain_events(&mut self, out: &mut Vec<parbs_obs::Event>) {
        let _ = out;
    }

    /// Serializes the policy's mutable state for checkpointing. Stateless
    /// policies (FR-FCFS, FCFS) write nothing — the default. Stateful
    /// policies must write every field that influences future decisions
    /// (virtual clocks, ranks, blacklists, RNG state) in a canonical order.
    fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        let _ = w;
    }

    /// Restores state captured by [`MemoryScheduler::save_state`] into a
    /// freshly configured policy of the same kind. The default (for
    /// stateless policies) reads nothing.
    ///
    /// # Errors
    ///
    /// Returns a [`parbs_snap::SnapError`] when the snapshot is truncated or
    /// inconsistent with this policy's configuration.
    fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        let _ = r;
        Ok(())
    }
}

/// The FCFS baseline: requests are serviced strictly in arrival order,
/// ignoring row-buffer state. Simple, starvation-free at the request level,
/// but exploits no locality and no parallelism (Section 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct FcfsScheduler(());

impl FcfsScheduler {
    /// Creates an FCFS scheduler.
    #[must_use]
    pub fn new() -> Self {
        FcfsScheduler(())
    }
}

/// FCFS packs one field: the inverted request id (oldest first).
pub(crate) const FCFS_KEY_LAYOUT: KeyLayout = KeyLayout {
    scheduler: "FCFS",
    fields: &[KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 }],
};

impl MemoryScheduler for FcfsScheduler {
    fn name(&self) -> &str {
        "FCFS"
    }

    fn priority_key(&self, req: &Request, _view: &SchedView<'_>) -> u128 {
        u128::from(u64::MAX - req.id.0)
    }

    fn compare(&self, a: &Request, b: &Request, _view: &SchedView<'_>) -> Ordering {
        a.id.cmp(&b.id)
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&FCFS_KEY_LAYOUT)
    }

    fn liveness_contract(&self) -> Option<LivenessContract> {
        // Strict arrival order: the oldest request is always next, so the
        // bound is simply the number of older queued requests.
        Some(LivenessContract {
            scheduler: "FCFS",
            policy: LivenessPolicy::Fifo,
            claim: StarvationClaim::Bounded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineAddr, RequestKind, TimingParams};

    #[test]
    fn fcfs_orders_by_id_only() {
        let ch = Channel::new(8, TimingParams::ddr2_800());
        let view = SchedView { channel: &ch, now: 0 };
        let old = Request::new(1, ThreadId(0), LineAddr::default(), RequestKind::Read, 0);
        let young = Request::new(2, ThreadId(1), LineAddr::default(), RequestKind::Read, 5);
        let s = FcfsScheduler::new();
        assert_eq!(s.compare(&old, &young, &view), Ordering::Less);
        assert_eq!(s.compare(&young, &old, &view), Ordering::Greater);
    }
}
