//! Per-bank state machine with timing bookkeeping.
//!
//! A bank is a two-dimensional array with a single row buffer. Servicing a
//! request requires a subset of {precharge, activate, read/write} depending
//! on the row-buffer state — the three access categories of Section 3:
//! row hit (`RD` only), row closed (`ACT` + `RD`), row conflict
//! (`PRE` + `ACT` + `RD`).

use crate::{CommandKind, ThreadId, TimingParams};

/// Row-buffer state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BankState {
    /// No open row (after precharge).
    #[default]
    Closed,
    /// A row is open in the row buffer.
    Open(u64),
}

/// One DRAM bank: row-buffer state plus earliest-issue times for each
/// command class, updated as commands are issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bank {
    state: BankState,
    earliest_activate: u64,
    earliest_column: u64,
    earliest_precharge: u64,
    last_activate_at: u64,
    /// Cycle of the most recent column command (for open-page grace policy).
    last_column_at: u64,
    /// End of the in-flight data transfer, for service/BLP tracking.
    service_end: u64,
    /// Thread whose request is currently being serviced, for BLP tracking.
    service_thread: Option<ThreadId>,
}

impl Bank {
    /// A closed, idle bank with all timing gates already satisfied.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The currently open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u64> {
        match self.state {
            BankState::Open(row) => Some(row),
            BankState::Closed => None,
        }
    }

    /// True if a request for `row` would be a row hit.
    #[must_use]
    pub fn is_row_hit(&self, row: u64) -> bool {
        self.open_row() == Some(row)
    }

    /// The next command a request for `row` needs on this bank.
    #[must_use]
    pub fn needed_command(&self, row: u64, is_write: bool) -> CommandKind {
        match self.state {
            BankState::Open(open) if open == row => {
                if is_write {
                    CommandKind::Write
                } else {
                    CommandKind::Read
                }
            }
            BankState::Open(_) => CommandKind::Precharge,
            BankState::Closed => CommandKind::Activate,
        }
    }

    /// Earliest cycle at which a command of `kind` may issue to this bank,
    /// considering per-bank constraints only (channel constraints are the
    /// [`crate::Channel`]'s job).
    #[must_use]
    pub fn earliest_issue(&self, kind: CommandKind) -> u64 {
        match kind {
            CommandKind::Activate => self.earliest_activate,
            CommandKind::Read | CommandKind::Write => self.earliest_column,
            CommandKind::Precharge => self.earliest_precharge,
            CommandKind::Refresh => 0,
        }
    }

    /// Cycle of the most recent activate, used by NFQ's priority-inversion
    /// prevention (a row may not be held open past a `t_ras` threshold).
    #[must_use]
    pub fn last_activate_at(&self) -> u64 {
        self.last_activate_at
    }

    /// Cycle of the most recent column command on this bank (0 if none),
    /// used by the controller's open-page grace policy.
    #[must_use]
    pub fn last_column_at(&self) -> u64 {
        self.last_column_at
    }

    /// Applies an `ACT row` issued at `now` on behalf of `thread`.
    ///
    /// # Panics
    ///
    /// Panics if the bank is not closed or the activate gate has not
    /// elapsed — the controller must only issue legal commands. The checks
    /// are always on (release builds included): they are two integer
    /// comparisons per row command, and a silently-violated timing
    /// constraint would corrupt every downstream measurement.
    pub fn activate(&mut self, row: u64, thread: ThreadId, now: u64, t: &TimingParams) {
        assert_eq!(self.state, BankState::Closed, "activate on non-closed bank");
        assert!(now >= self.earliest_activate, "tRP/tRC violated");
        self.state = BankState::Open(row);
        self.last_activate_at = now;
        self.earliest_column = self.earliest_column.max(now + t.t_rcd);
        self.earliest_precharge = self.earliest_precharge.max(now + t.t_ras);
        self.earliest_activate = self.earliest_activate.max(now + t.t_rc);
        // The bank is servicing this request from the activate on; estimate
        // completion so BLP sampling sees the full access, not just the
        // data transfer (the column command will refine the estimate).
        self.service_end = self.service_end.max(now + t.t_rcd + t.t_cl + t.t_burst);
        self.service_thread = Some(thread);
    }

    /// Applies a column command (`RD`/`WR`) issued at `now`; returns the
    /// `[start, end)` data-bus interval of the transfer.
    ///
    /// # Panics
    ///
    /// Panics if no row is open or `t_rcd` has not elapsed (always on, like
    /// [`Bank::activate`]).
    pub fn column(
        &mut self,
        is_write: bool,
        thread: ThreadId,
        now: u64,
        t: &TimingParams,
    ) -> (u64, u64) {
        assert!(matches!(self.state, BankState::Open(_)), "column on closed bank");
        assert!(now >= self.earliest_column, "tRCD violated");
        let start = now + if is_write { t.t_cwl } else { t.t_cl };
        let end = start + t.t_burst;
        if is_write {
            // Write recovery: the bank may not precharge until tWR after the
            // last data beat.
            self.earliest_precharge = self.earliest_precharge.max(end + t.t_wr);
        } else {
            self.earliest_precharge = self.earliest_precharge.max(now + t.t_rtp);
        }
        self.last_column_at = now;
        self.service_end = self.service_end.max(end);
        self.service_thread = Some(thread);
        (start, end)
    }

    /// Applies a `PRE` issued at `now` on behalf of `thread` (the thread
    /// whose row-conflict request triggered the precharge).
    ///
    /// # Panics
    ///
    /// Panics if the bank is closed or `t_ras`/`t_rtp`/`t_wr` gates have
    /// not elapsed (always on, like [`Bank::activate`]).
    pub fn precharge(&mut self, thread: ThreadId, now: u64, t: &TimingParams) {
        assert!(matches!(self.state, BankState::Open(_)), "precharge on closed bank");
        assert!(now >= self.earliest_precharge, "tRAS/tRTP/tWR violated");
        self.state = BankState::Closed;
        self.earliest_activate = self.earliest_activate.max(now + t.t_rp);
        self.service_end = self.service_end.max(now + t.t_rp + t.t_rcd + t.t_cl + t.t_burst);
        self.service_thread = Some(thread);
    }

    /// Closes the bank for an all-bank refresh: the row is lost and the
    /// next activate must wait out the refresh cycle (the caller blocks the
    /// whole channel for `t_rfc`).
    pub(crate) fn force_precharge_for_refresh(&mut self, now: u64, t: &TimingParams) {
        self.state = BankState::Closed;
        self.earliest_activate = self.earliest_activate.max(now + t.t_rfc);
    }

    /// True while a column command's data transfer is still in flight —
    /// the "being serviced" predicate of the paper's BLP definition.
    #[must_use]
    pub fn is_servicing(&self, now: u64) -> bool {
        now < self.service_end
    }

    /// The thread being serviced, if a transfer is in flight at `now`.
    #[must_use]
    pub fn servicing_thread(&self, now: u64) -> Option<ThreadId> {
        if self.is_servicing(now) {
            self.service_thread
        } else {
            None
        }
    }
}

impl parbs_snap::Snap for BankState {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        match *self {
            BankState::Closed => w.u8(0),
            BankState::Open(row) => {
                w.u8(1);
                w.u64(row);
            }
        }
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        match r.u8()? {
            0 => Ok(BankState::Closed),
            1 => Ok(BankState::Open(r.u64()?)),
            t => Err(parbs_snap::SnapError::BadTag { what: "bank state", value: u64::from(t) }),
        }
    }
}

impl parbs_snap::Snap for Bank {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.state);
        w.u64(self.earliest_activate);
        w.u64(self.earliest_column);
        w.u64(self.earliest_precharge);
        w.u64(self.last_activate_at);
        w.u64(self.last_column_at);
        w.u64(self.service_end);
        w.put(&self.service_thread);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(Bank {
            state: r.get()?,
            earliest_activate: r.u64()?,
            earliest_column: r.u64()?,
            earliest_precharge: r.u64()?,
            last_activate_at: r.u64()?,
            last_column_at: r.u64()?,
            service_end: r.u64()?,
            service_thread: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::ddr2_800()
    }

    #[test]
    fn fresh_bank_needs_activate() {
        let b = Bank::new();
        assert_eq!(b.needed_command(5, false), CommandKind::Activate);
        assert_eq!(b.open_row(), None);
    }

    #[test]
    fn open_row_hit_needs_column() {
        let mut b = Bank::new();
        b.activate(5, ThreadId(0), 0, &t());
        assert!(b.is_row_hit(5));
        assert_eq!(b.needed_command(5, false), CommandKind::Read);
        assert_eq!(b.needed_command(5, true), CommandKind::Write);
    }

    #[test]
    fn open_other_row_needs_precharge() {
        let mut b = Bank::new();
        b.activate(5, ThreadId(0), 0, &t());
        assert_eq!(b.needed_command(6, false), CommandKind::Precharge);
    }

    #[test]
    fn activate_gates_column_by_trcd() {
        let mut b = Bank::new();
        b.activate(5, ThreadId(0), 100, &t());
        assert_eq!(b.earliest_issue(CommandKind::Read), 100 + t().t_rcd);
    }

    #[test]
    fn activate_gates_precharge_by_tras() {
        let mut b = Bank::new();
        b.activate(5, ThreadId(0), 100, &t());
        assert_eq!(b.earliest_issue(CommandKind::Precharge), 100 + t().t_ras);
    }

    #[test]
    fn precharge_gates_activate_by_trp() {
        let mut b = Bank::new();
        b.activate(5, ThreadId(0), 0, &t());
        let pre_at = t().t_ras;
        b.precharge(ThreadId(0), pre_at, &t());
        assert_eq!(b.open_row(), None);
        assert_eq!(b.earliest_issue(CommandKind::Activate), (pre_at + t().t_rp).max(t().t_rc));
    }

    #[test]
    fn read_returns_data_interval() {
        let mut b = Bank::new();
        b.activate(5, ThreadId(0), 0, &t());
        let (start, end) = b.column(false, ThreadId(2), t().t_rcd, &t());
        assert_eq!(start, t().t_rcd + t().t_cl);
        assert_eq!(end, start + t().t_burst);
        assert!(b.is_servicing(end - 1));
        assert!(!b.is_servicing(end));
        assert_eq!(b.servicing_thread(start), Some(ThreadId(2)));
    }

    #[test]
    fn write_extends_precharge_gate_by_twr() {
        let mut b = Bank::new();
        b.activate(5, ThreadId(0), 0, &t());
        let now = t().t_rcd;
        let (_, end) = b.column(true, ThreadId(0), now, &t());
        assert_eq!(b.earliest_issue(CommandKind::Precharge), (end + t().t_wr).max(t().t_ras));
    }
}
