//! Per-scheduler liveness contracts.
//!
//! PAR-BS's headline guarantee is a *liveness* property: batch marking
//! bounds how long any request can starve (Section 4.1 derives the
//! worst-case latency from the Marking-Cap). A [`LivenessContract`] is the
//! machine-checkable statement of that kind of claim, declared by each
//! scheduler the same way a [`crate::KeyLayout`] declares its priority-key
//! bit layout: the contract names the *abstract policy class* the scheduler
//! belongs to and the *starvation claim* it makes, and `parbs-analyze
//! check-liveness` model-checks the claim by exhaustively exploring the
//! policy class on a tiny geometry — either proving a concrete service
//! bound or exhibiting a minimal starvation lasso.
//!
//! The policy classes are deliberately coarse. The model checker does not
//! re-implement every scheduler's arithmetic; it checks the *mechanism*
//! each policy relies on for (un)boundedness — arrival order, row-hit
//! bypassing, batch marking, blacklisting, attained-service ranking,
//! fairness boosting — with saturating counters so the state space closes.
//! A scheduler whose liveness hinges on something its declared class does
//! not model should not declare that class.

use std::fmt;

/// The abstract scheduling mechanism a liveness claim is checked under.
///
/// Every class orders queued requests by a short lexicographic priority
/// tuple whose final tiebreak is arrival order (age) — never a thread or
/// bank id, so the model stays equivariant under the relabelings the
/// symmetry reduction quotients by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LivenessPolicy {
    /// Strict arrival order, oblivious to row-buffer state (FCFS).
    Fifo,
    /// Row hits first, then arrival order (FR-FCFS). The class with the
    /// textbook starvation lasso: a row-hit hammer stream outranks an older
    /// row-conflict request forever.
    FrFcfs,
    /// Batch marking (PAR-BS): when no marked request remains, every queued
    /// request is marked, at most `cap` per (thread, bank); marked requests
    /// outrank unmarked ones, then row hits, then age.
    BatchMarking {
        /// Marking-Cap: marks allowed per (thread, bank) per batch.
        cap: u32,
    },
    /// Consecutive-service blacklisting (BLISS): a thread serviced
    /// `threshold` times in a row is blacklisted; non-blacklisted requests
    /// outrank blacklisted ones, then row hits, then age. The model omits
    /// BLISS's periodic clearing — clearing only lengthens the bound by a
    /// constant per interval, it cannot turn a bounded policy unbounded.
    Blacklist {
        /// Consecutive services before a thread is blacklisted.
        threshold: u32,
    },
    /// Least-attained-service ranking (ATLAS; also the shape of NFQ's
    /// earliest-virtual-deadline order): lower attained service wins, then
    /// row hits, then age. Counters saturate at `saturation` so the state
    /// space closes; saturation is conservative — it only makes the
    /// adversary look *less* served, never the victim more served.
    LeastAttained {
        /// Attained-service counter ceiling.
        saturation: u32,
    },
    /// Fairness-threshold boosting (STFM): a thread whose requests went
    /// unserved for `threshold` consecutive services is boosted over all
    /// unboosted requests (most-waited first), then row hits, then age.
    FairnessThreshold {
        /// Services a thread may be passed over before it is boosted.
        threshold: u32,
    },
}

impl fmt::Display for LivenessPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LivenessPolicy::Fifo => write!(f, "fifo"),
            LivenessPolicy::FrFcfs => write!(f, "fr-fcfs"),
            LivenessPolicy::BatchMarking { cap } => write!(f, "batch-marking(cap={cap})"),
            LivenessPolicy::Blacklist { threshold } => write!(f, "blacklist(thr={threshold})"),
            LivenessPolicy::LeastAttained { saturation } => {
                write!(f, "least-attained(sat={saturation})")
            }
            LivenessPolicy::FairnessThreshold { threshold } => {
                write!(f, "fairness-threshold(thr={threshold})")
            }
        }
    }
}

/// The starvation claim a scheduler makes about itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StarvationClaim {
    /// Every enqueued request is serviced within some finite number of
    /// services; the model checker proves the claim and reports the
    /// tightest bound it found on the checked geometry.
    Bounded,
    /// Starvation is unbounded under an adversarial request mix; the model
    /// checker must exhibit a reachable lasso that starves a victim
    /// request forever.
    Unbounded,
}

impl fmt::Display for StarvationClaim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StarvationClaim::Bounded => write!(f, "bounded"),
            StarvationClaim::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// A scheduler's declared liveness contract, checked by `parbs-analyze
/// check-liveness` (see [`crate::MemoryScheduler::liveness_contract`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LivenessContract {
    /// Scheduler display name the contract belongs to.
    pub scheduler: &'static str,
    /// The abstract policy class the claim is checked under.
    pub policy: LivenessPolicy,
    /// The claim itself.
    pub claim: StarvationClaim,
}

impl LivenessContract {
    /// Structural sanity: threshold-style parameters must be non-zero
    /// (a zero cap or threshold would make the mechanism vacuous and the
    /// claim unfalsifiable in the intended direction).
    ///
    /// # Errors
    ///
    /// Returns a description of the defect.
    pub fn validate(&self) -> Result<(), String> {
        let param = match self.policy {
            LivenessPolicy::Fifo | LivenessPolicy::FrFcfs => None,
            LivenessPolicy::BatchMarking { cap } => Some(("cap", cap)),
            LivenessPolicy::Blacklist { threshold }
            | LivenessPolicy::FairnessThreshold { threshold } => Some(("threshold", threshold)),
            LivenessPolicy::LeastAttained { saturation } => Some(("saturation", saturation)),
        };
        if let Some((name, value)) = param {
            if value == 0 {
                return Err(format!(
                    "{}: {} of policy {} must be non-zero",
                    self.scheduler, name, self.policy
                ));
            }
        }
        Ok(())
    }
}

impl fmt::Display for LivenessContract {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} claims {}", self.scheduler, self.policy, self.claim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_parameters_are_rejected() {
        let c = LivenessContract {
            scheduler: "X",
            policy: LivenessPolicy::BatchMarking { cap: 0 },
            claim: StarvationClaim::Bounded,
        };
        assert!(c.validate().is_err());
        let ok = LivenessContract {
            scheduler: "X",
            policy: LivenessPolicy::BatchMarking { cap: 2 },
            claim: StarvationClaim::Bounded,
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn display_is_one_line() {
        let c = LivenessContract {
            scheduler: "FR-FCFS",
            policy: LivenessPolicy::FrFcfs,
            claim: StarvationClaim::Unbounded,
        };
        assert_eq!(c.to_string(), "FR-FCFS: fr-fcfs claims unbounded");
    }
}
