//! First-class DRAM geometry: the channel / rank / bank / row / column
//! shape of the memory system, as one explicit value.
//!
//! Historically the substrate hard-coded a single-rank geometry in three
//! scattered places (the config's scalar fields, the channel's flat bank
//! vector and the address mapper's field widths). [`Geometry`] makes the
//! shape a value that flows through `DramConfig` → `Channel` → protocol
//! checker → controller → address mapping, so ranks and mapping policies
//! can be swept like any other experimental parameter.

/// Why a geometry (or a mapper built from it) was rejected.
///
/// Hardware address slicing requires power-of-two field widths, and the
/// controller's bank-level-parallelism masks pack one bit per bank into a
/// `u64`, bounding banks per channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// A dimension was zero.
    Zero {
        /// Name of the offending field.
        field: &'static str,
    },
    /// A dimension was not a power of two.
    NotPowerOfTwo {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: u64,
    },
    /// `ranks_per_channel * banks_per_rank` exceeds the 64-bank-per-channel
    /// limit imposed by the controller's `u64` bank bitmasks.
    TooManyBanks {
        /// The rejected total bank count per channel.
        banks_per_channel: usize,
    },
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::Zero { field } => write!(f, "{field} must be nonzero"),
            GeometryError::NotPowerOfTwo { field, value } => {
                write!(f, "{field} must be a power of two, got {value}")
            }
            GeometryError::TooManyBanks { banks_per_channel } => write!(
                f,
                "ranks_per_channel * banks_per_rank = {banks_per_channel} exceeds the \
                 64-banks-per-channel limit of the controller's bank bitmasks"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

/// The shape of the DRAM system: channels × ranks × banks × rows × columns.
///
/// `bank` indices elsewhere in this crate (requests, commands, the
/// channel's bank vector, scheduler load tables) are **channel-global**:
/// rank `r` owns banks `r * banks_per_rank .. (r + 1) * banks_per_rank`.
/// [`Geometry::rank_of`] and [`Geometry::bank_in_rank`] convert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Independent DRAM channels (one controller each).
    pub channels: usize,
    /// Ranks sharing each channel's command/data bus.
    pub ranks_per_channel: usize,
    /// Banks within one rank.
    pub banks_per_rank: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Cache-line columns per row.
    pub cols_per_row: u64,
}

impl Geometry {
    /// The paper's Table 2 shape: one channel, one rank, 8 banks,
    /// 16 K rows, 32 cache lines (2 KB rows of 64 B lines) per row.
    #[must_use]
    pub fn table2() -> Geometry {
        Geometry {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 8,
            rows_per_bank: 16 * 1024,
            cols_per_row: 32,
        }
    }

    /// Total banks per channel (`ranks_per_channel * banks_per_rank`).
    #[must_use]
    pub fn banks_per_channel(&self) -> usize {
        self.ranks_per_channel * self.banks_per_rank
    }

    /// The rank owning channel-global bank index `bank`.
    #[must_use]
    pub fn rank_of(&self, bank: usize) -> usize {
        bank / self.banks_per_rank
    }

    /// The within-rank index of channel-global bank index `bank`.
    #[must_use]
    pub fn bank_in_rank(&self, bank: usize) -> usize {
        bank % self.banks_per_rank
    }

    /// Checks every dimension is a nonzero power of two and the per-channel
    /// bank count fits the controller's `u64` bank bitmasks.
    ///
    /// # Errors
    ///
    /// Returns the first [`GeometryError`] found, field by field.
    pub fn validate(&self) -> Result<(), GeometryError> {
        fn check(field: &'static str, value: u64) -> Result<(), GeometryError> {
            if value == 0 {
                Err(GeometryError::Zero { field })
            } else if !value.is_power_of_two() {
                Err(GeometryError::NotPowerOfTwo { field, value })
            } else {
                Ok(())
            }
        }
        check("channels", self.channels as u64)?;
        check("ranks_per_channel", self.ranks_per_channel as u64)?;
        check("banks_per_rank", self.banks_per_rank as u64)?;
        check("rows_per_bank", self.rows_per_bank)?;
        check("cols_per_row", self.cols_per_row)?;
        if self.banks_per_channel() > 64 {
            return Err(GeometryError::TooManyBanks {
                banks_per_channel: self.banks_per_channel(),
            });
        }
        Ok(())
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_is_valid_single_rank() {
        let g = Geometry::table2();
        g.validate().unwrap();
        assert_eq!(g.banks_per_channel(), 8);
        assert_eq!(g.rank_of(7), 0);
    }

    #[test]
    fn rank_bank_split_is_rank_major() {
        let g = Geometry { ranks_per_channel: 4, banks_per_rank: 8, ..Geometry::table2() };
        g.validate().unwrap();
        assert_eq!(g.banks_per_channel(), 32);
        assert_eq!(g.rank_of(0), 0);
        assert_eq!(g.rank_of(8), 1);
        assert_eq!(g.rank_of(31), 3);
        assert_eq!(g.bank_in_rank(8), 0);
        assert_eq!(g.bank_in_rank(13), 5);
    }

    #[test]
    fn validation_reports_typed_errors() {
        let zero = Geometry { channels: 0, ..Geometry::table2() };
        assert_eq!(zero.validate(), Err(GeometryError::Zero { field: "channels" }));
        let npot = Geometry { banks_per_rank: 3, ..Geometry::table2() };
        assert_eq!(
            npot.validate(),
            Err(GeometryError::NotPowerOfTwo { field: "banks_per_rank", value: 3 })
        );
        let wide = Geometry { ranks_per_channel: 16, banks_per_rank: 8, ..Geometry::table2() };
        assert_eq!(wide.validate(), Err(GeometryError::TooManyBanks { banks_per_channel: 128 }));
        assert!(wide.validate().unwrap_err().to_string().contains("128"));
    }
}
