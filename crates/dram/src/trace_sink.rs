//! A [`parbs_obs::EventSink`] that rebuilds a `Vec<(cycle, Command)>`
//! command trace from the event stream — handy for trace-equality tests
//! and offline analysis of issued command sequences.

use parbs_obs::{CmdKind, Event, EventSink};

use crate::{Command, CommandKind, RequestId};

/// Converts a command kind to its observability-event counterpart
/// (refresh has its own [`Event::Refresh`] and maps to `None`).
#[must_use]
pub fn obs_cmd_kind(kind: CommandKind) -> Option<CmdKind> {
    match kind {
        CommandKind::Activate => Some(CmdKind::Activate),
        CommandKind::Read => Some(CmdKind::Read),
        CommandKind::Write => Some(CmdKind::Write),
        CommandKind::Precharge => Some(CmdKind::Precharge),
        CommandKind::Refresh => None,
    }
}

/// Collects `(issue cycle, Command)` pairs from [`Event::CommandIssued`] and
/// [`Event::Refresh`] events, including the `RequestId(u64::MAX)` refresh
/// sentinel.
#[derive(Debug, Default)]
pub struct CommandTraceSink {
    trace: Vec<(u64, Command)>,
}

impl CommandTraceSink {
    /// Creates an empty trace collector.
    #[must_use]
    pub fn new() -> Self {
        CommandTraceSink::default()
    }

    /// The commands collected so far.
    #[must_use]
    pub fn trace(&self) -> &[(u64, Command)] {
        &self.trace
    }

    /// Consumes the sink, returning the collected trace.
    #[must_use]
    pub fn into_trace(self) -> Vec<(u64, Command)> {
        self.trace
    }
}

impl EventSink for CommandTraceSink {
    fn record(&mut self, event: &Event) {
        match *event {
            Event::CommandIssued { at, request, kind, rank, bank, row, col, .. } => {
                let kind = match kind {
                    CmdKind::Activate => CommandKind::Activate,
                    CmdKind::Read => CommandKind::Read,
                    CmdKind::Write => CommandKind::Write,
                    CmdKind::Precharge => CommandKind::Precharge,
                };
                self.trace.push((
                    at,
                    Command { kind, rank, bank, row, col, request: RequestId(request) },
                ));
            }
            Event::Refresh { at, rank } => {
                self.trace.push((at, Command::refresh(rank, RequestId(u64::MAX))));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebuilds_commands_and_refreshes() {
        let mut sink = CommandTraceSink::new();
        sink.record(&Event::CommandIssued {
            at: 10,
            request: 7,
            thread: 0,
            kind: CmdKind::Activate,
            rank: 1,
            bank: 3,
            row: 42,
            col: 5,
            marked: false,
            service: Some(parbs_obs::ServiceClass::Closed),
            data_end: None,
        });
        sink.record(&Event::Refresh { at: 20, rank: 1 });
        sink.record(&Event::Enqueued {
            at: 21,
            request: 8,
            thread: 0,
            write: false,
            rank: 0,
            bank: 0,
            row: 0,
        });
        let trace = sink.into_trace();
        assert_eq!(trace.len(), 2, "non-command events are ignored");
        assert_eq!(
            trace[0],
            (
                10,
                Command {
                    kind: CommandKind::Activate,
                    rank: 1,
                    bank: 3,
                    row: 42,
                    col: 5,
                    request: RequestId(7)
                }
            )
        );
        assert_eq!(trace[1].1.kind, CommandKind::Refresh);
        assert_eq!(trace[1].1.rank, 1);
        assert_eq!(trace[1].1.request, RequestId(u64::MAX));
    }

    #[test]
    fn obs_cmd_kind_maps_all_command_kinds() {
        assert_eq!(obs_cmd_kind(CommandKind::Read), Some(CmdKind::Read));
        assert_eq!(obs_cmd_kind(CommandKind::Refresh), None);
    }
}
