//! One DRAM channel: banks plus shared command/address/data buses and
//! rank-level timing constraints (`t_ccd`, `t_rrd`, `t_wtr`).

use crate::{Bank, Command, CommandKind, ThreadId, TimingParams};

/// A channel with its banks and bus-occupancy bookkeeping. The controller
/// issues at most one command per DRAM cycle on the channel's command bus;
/// the channel tracks everything needed to decide whether a command is
/// *ready* (issuable without violating a timing or bus constraint).
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<Bank>,
    timing: TimingParams,
    /// Data bus is busy until this cycle (transfers are fully serialized;
    /// with `t_ccd ≤ t_burst` the bus is the binding constraint).
    data_bus_free_at: u64,
    /// Earliest next column command (tCCD after the previous one, tWTR after
    /// write data).
    earliest_column: u64,
    /// Earliest next activate anywhere on the channel (tRRD).
    earliest_activate: u64,
    /// Issue times of recent activates (tFAW sliding window).
    recent_activates: Vec<u64>,
    /// All banks are blocked until this cycle (refresh in progress).
    refresh_until: u64,
}

impl Channel {
    /// Creates a channel with `banks` idle banks.
    #[must_use]
    pub fn new(banks: usize, timing: TimingParams) -> Self {
        Channel {
            banks: vec![Bank::new(); banks],
            timing,
            data_bus_free_at: 0,
            earliest_column: 0,
            earliest_activate: 0,
            recent_activates: Vec::new(),
            refresh_until: 0,
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Immutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// The timing parameters of this channel.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// True if `cmd` can legally issue at cycle `now` (all per-bank and
    /// channel-level constraints satisfied, data bus available for column
    /// commands).
    #[must_use]
    pub fn can_issue(&self, cmd: &Command, now: u64) -> bool {
        if now < self.refresh_until {
            return false;
        }
        let bank = &self.banks[cmd.bank];
        if now < bank.earliest_issue(cmd.kind) {
            return false;
        }
        match cmd.kind {
            CommandKind::Activate => {
                now >= self.earliest_activate && bank.open_row().is_none() && self.faw_allows(now)
            }
            CommandKind::Read | CommandKind::Write => {
                if now < self.earliest_column || !bank.is_row_hit(cmd.row) {
                    return false;
                }
                let start = now
                    + if cmd.kind == CommandKind::Write {
                        self.timing.t_cwl
                    } else {
                        self.timing.t_cl
                    };
                start >= self.data_bus_free_at
            }
            CommandKind::Precharge => bank.open_row().is_some(),
            // Refresh needs a quiet data bus; it force-precharges all banks.
            CommandKind::Refresh => now >= self.data_bus_free_at,
        }
    }

    /// Issues `cmd` at `now` on behalf of `thread`, updating bank and bus
    /// state. For column commands, returns the `[start, end)` data interval;
    /// for row commands returns `None`.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `cmd` is not issuable; call
    /// [`Channel::can_issue`] first.
    pub fn issue(&mut self, cmd: &Command, thread: ThreadId, now: u64) -> Option<(u64, u64)> {
        debug_assert!(self.can_issue(cmd, now), "command {cmd:?} not ready at {now}");
        let timing = self.timing;
        match cmd.kind {
            CommandKind::Activate => {
                self.banks[cmd.bank].activate(cmd.row, thread, now, &timing);
                self.earliest_activate = self.earliest_activate.max(now + timing.t_rrd);
                if timing.t_faw > 0 {
                    self.recent_activates.push(now);
                    let faw = timing.t_faw;
                    self.recent_activates.retain(|&t| t + faw > now);
                }
                None
            }
            CommandKind::Read | CommandKind::Write => {
                let is_write = cmd.kind == CommandKind::Write;
                let (start, end) = self.banks[cmd.bank].column(is_write, thread, now, &timing);
                self.data_bus_free_at = self.data_bus_free_at.max(end);
                self.earliest_column = self.earliest_column.max(now + timing.t_ccd);
                if is_write {
                    // Write-to-read turnaround applies channel-wide.
                    self.earliest_column = self.earliest_column.max(end + timing.t_wtr);
                }
                Some((start, end))
            }
            CommandKind::Precharge => {
                self.banks[cmd.bank].precharge(thread, now, &timing);
                None
            }
            CommandKind::Refresh => {
                self.refresh(now);
                None
            }
        }
    }

    /// True if another activate fits into the four-activate window at `now`:
    /// an activate at `t` occupies the window until `t + t_faw`.
    fn faw_allows(&self, now: u64) -> bool {
        if self.timing.t_faw == 0 {
            return true;
        }
        let faw = self.timing.t_faw;
        self.recent_activates.iter().filter(|&&t| t + faw > now).count() < 4
    }

    /// Begins an all-bank refresh at `now`: every bank must be precharged
    /// (open rows are force-closed, as a controller would precharge-all
    /// first) and the rank is unavailable for `t_rfc`.
    pub fn refresh(&mut self, now: u64) {
        let t = self.timing;
        for b in &mut self.banks {
            b.force_precharge_for_refresh(now, &t);
        }
        self.refresh_until = self.refresh_until.max(now + t.t_rfc);
        self.earliest_activate = self.earliest_activate.max(now + t.t_rfc);
    }

    /// Cycle until which the channel is blocked by an in-progress refresh.
    #[must_use]
    pub fn refresh_until(&self) -> u64 {
        self.refresh_until
    }

    /// Number of banks with an in-flight data transfer at `now` — the
    /// instantaneous bank-level parallelism of the channel.
    #[must_use]
    pub fn banks_servicing(&self, now: u64) -> usize {
        self.banks.iter().filter(|b| b.is_servicing(now)).count()
    }

    /// Number of banks servicing requests of `thread` at `now`.
    #[must_use]
    pub fn banks_servicing_thread(&self, thread: ThreadId, now: u64) -> usize {
        self.banks.iter().filter(|b| b.servicing_thread(now) == Some(thread)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestId;

    fn cmd(kind: CommandKind, bank: usize, row: u64) -> Command {
        Command { kind, bank, row, col: 0, request: RequestId(0) }
    }

    #[test]
    fn activate_then_read_same_bank() {
        let mut ch = Channel::new(8, TimingParams::ddr2_800());
        let a = cmd(CommandKind::Activate, 0, 3);
        assert!(ch.can_issue(&a, 0));
        ch.issue(&a, ThreadId(0), 0);
        let r = cmd(CommandKind::Read, 0, 3);
        assert!(!ch.can_issue(&r, 10), "tRCD must gate the read");
        assert!(ch.can_issue(&r, 60));
        let (start, end) = ch.issue(&r, ThreadId(0), 60).unwrap();
        assert_eq!((start, end), (120, 160));
    }

    #[test]
    fn trrd_gates_back_to_back_activates() {
        let mut ch = Channel::new(8, TimingParams::ddr2_800());
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        let a1 = cmd(CommandKind::Activate, 1, 1);
        assert!(!ch.can_issue(&a1, 10));
        assert!(ch.can_issue(&a1, 30));
    }

    #[test]
    fn data_bus_serializes_reads_across_banks() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::new(8, t);
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        ch.issue(&cmd(CommandKind::Activate, 1, 1), ThreadId(0), 30);
        ch.issue(&cmd(CommandKind::Read, 0, 1), ThreadId(0), 60);
        // Bank 1's read is tRCD-ready at 90, tCCD-ready at 80, but its data
        // (start = now + tCL) must not start before bank 0's data ends (160).
        let r1 = cmd(CommandKind::Read, 1, 1);
        assert!(!ch.can_issue(&r1, 90), "data bus busy until 160");
        assert!(ch.can_issue(&r1, 100), "data start 160 == bus free");
        let (start, _) = ch.issue(&r1, ThreadId(0), 100).unwrap();
        assert_eq!(start, 160);
    }

    #[test]
    fn column_to_wrong_row_is_illegal() {
        let mut ch = Channel::new(8, TimingParams::ddr2_800());
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        assert!(!ch.can_issue(&cmd(CommandKind::Read, 0, 2), 60));
    }

    #[test]
    fn precharge_to_closed_bank_is_illegal() {
        let ch = Channel::new(8, TimingParams::ddr2_800());
        assert!(!ch.can_issue(&cmd(CommandKind::Precharge, 0, 0), 1_000));
    }

    #[test]
    fn write_to_read_turnaround() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::new(8, t);
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        ch.issue(&cmd(CommandKind::Activate, 1, 1), ThreadId(0), 30);
        let (_, wend) = ch.issue(&cmd(CommandKind::Write, 0, 1), ThreadId(0), 60).unwrap();
        // Next read must wait for write data end + tWTR.
        let r = cmd(CommandKind::Read, 1, 1);
        assert!(!ch.can_issue(&r, wend));
        assert!(ch.can_issue(&r, wend + t.t_wtr));
    }

    #[test]
    fn blp_counts_in_flight_banks() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::new(8, t);
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        ch.issue(&cmd(CommandKind::Activate, 1, 1), ThreadId(1), 30);
        ch.issue(&cmd(CommandKind::Read, 0, 1), ThreadId(0), 60);
        ch.issue(&cmd(CommandKind::Read, 1, 1), ThreadId(1), 100);
        // Bank0 data: [120,160); bank1 data: [160,200). Transfers serialize,
        // but both banks count as servicing while their data is in flight.
        assert_eq!(ch.banks_servicing(130), 2);
        assert_eq!(ch.banks_servicing_thread(ThreadId(0), 130), 1);
        assert_eq!(ch.banks_servicing_thread(ThreadId(1), 130), 1);
        assert_eq!(ch.banks_servicing(170), 1);
    }
}
