//! One DRAM channel: ranks of banks plus the shared command/address/data
//! buses. Rank-level constraints (`t_rrd`, `t_faw`, `t_rfc`) are tracked
//! per rank; channel-level constraints (`t_ccd`, `t_wtr`, the data bus and
//! its `t_rtrs` rank-switch penalty) are shared.

use crate::{Bank, Command, CommandKind, ThreadId, TimingParams};

/// A channel with its banks and bus-occupancy bookkeeping. The controller
/// issues at most one command per DRAM cycle on the channel's command bus;
/// the channel tracks everything needed to decide whether a command is
/// *ready* (issuable without violating a timing or bus constraint).
///
/// Banks are indexed **channel-globally** and rank-major: rank `r` owns
/// banks `r * banks_per_rank .. (r + 1) * banks_per_rank`.
#[derive(Debug, Clone)]
pub struct Channel {
    banks: Vec<Bank>,
    timing: TimingParams,
    banks_per_rank: usize,
    /// Data bus is busy until this cycle (transfers are fully serialized;
    /// with `t_ccd ≤ t_burst` the bus is the binding constraint).
    data_bus_free_at: u64,
    /// Rank that drove the last data transfer (a following transfer from a
    /// different rank pays `t_rtrs` on top of `data_bus_free_at`).
    last_data_rank: Option<usize>,
    /// Earliest next column command (tCCD after the previous one, tWTR after
    /// write data) — channel-wide, the command/data buses are shared.
    earliest_column: u64,
    /// Earliest next activate per rank (tRRD is a rank constraint).
    earliest_activate: Vec<u64>,
    /// Issue times of recent activates per rank (tFAW sliding window).
    recent_activates: Vec<Vec<u64>>,
    /// Per-rank refresh blackout: the rank's banks are blocked until this
    /// cycle, other ranks keep operating.
    refresh_until: Vec<u64>,
}

impl Channel {
    /// Creates a single-rank channel with `banks` idle banks — the paper's
    /// Table 2 shape and the convenience constructor used throughout unit
    /// tests. Multi-rank channels use [`Channel::with_ranks`].
    #[must_use]
    pub fn new(banks: usize, timing: TimingParams) -> Self {
        Channel::with_ranks(1, banks, timing)
    }

    /// Creates a channel of `ranks` ranks × `banks_per_rank` idle banks.
    #[must_use]
    pub fn with_ranks(ranks: usize, banks_per_rank: usize, timing: TimingParams) -> Self {
        assert!(ranks > 0 && banks_per_rank > 0, "a channel needs at least one bank");
        Channel {
            banks: vec![Bank::new(); ranks * banks_per_rank],
            timing,
            banks_per_rank,
            data_bus_free_at: 0,
            last_data_rank: None,
            earliest_column: 0,
            earliest_activate: vec![0; ranks],
            recent_activates: vec![Vec::new(); ranks],
            refresh_until: vec![0; ranks],
        }
    }

    /// Number of banks (channel-global, over all ranks).
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Number of ranks.
    #[must_use]
    pub fn rank_count(&self) -> usize {
        self.refresh_until.len()
    }

    /// Banks per rank.
    #[must_use]
    pub fn banks_per_rank(&self) -> usize {
        self.banks_per_rank
    }

    /// The rank owning channel-global bank index `bank`.
    #[must_use]
    pub fn rank_of(&self, bank: usize) -> usize {
        bank / self.banks_per_rank
    }

    /// Immutable access to a bank (channel-global index).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// The timing parameters of this channel.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The rank a command addresses: explicit for refresh, derived from the
    /// global bank index otherwise.
    fn cmd_rank(&self, cmd: &Command) -> usize {
        if cmd.kind == CommandKind::Refresh {
            cmd.rank
        } else {
            self.rank_of(cmd.bank)
        }
    }

    /// True if `cmd` can legally issue at cycle `now` (all per-bank,
    /// per-rank and channel-level constraints satisfied, data bus available
    /// for column commands).
    #[must_use]
    pub fn can_issue(&self, cmd: &Command, now: u64) -> bool {
        let rank = self.cmd_rank(cmd);
        if now < self.refresh_until[rank] {
            return false;
        }
        if cmd.kind == CommandKind::Refresh {
            // Refresh needs a quiet data bus; it force-precharges the rank.
            return now >= self.data_bus_free_at;
        }
        let bank = &self.banks[cmd.bank];
        if now < bank.earliest_issue(cmd.kind) {
            return false;
        }
        match cmd.kind {
            CommandKind::Activate => {
                now >= self.earliest_activate[rank]
                    && bank.open_row().is_none()
                    && self.faw_allows(rank, now)
            }
            CommandKind::Read | CommandKind::Write => {
                if now < self.earliest_column || !bank.is_row_hit(cmd.row) {
                    return false;
                }
                let start = now
                    + if cmd.kind == CommandKind::Write {
                        self.timing.t_cwl
                    } else {
                        self.timing.t_cl
                    };
                start >= self.data_bus_free_at + self.rank_switch_penalty(rank)
            }
            CommandKind::Precharge => bank.open_row().is_some(),
            CommandKind::Refresh => unreachable!("handled above"),
        }
    }

    /// Extra data-bus gap before `rank` may drive data: `t_rtrs` when the
    /// previous transfer came from a different rank, 0 otherwise.
    fn rank_switch_penalty(&self, rank: usize) -> u64 {
        match self.last_data_rank {
            Some(last) if last != rank => self.timing.t_rtrs,
            _ => 0,
        }
    }

    /// Issues `cmd` at `now` on behalf of `thread`, updating bank and bus
    /// state. For column commands, returns the `[start, end)` data interval;
    /// for row commands returns `None`.
    ///
    /// # Panics
    ///
    /// Panics if `cmd` is not issuable; call [`Channel::can_issue`] first.
    /// The check is always on — a command issues at most once per DRAM
    /// cycle, so the cost is negligible, and a silent protocol violation in
    /// a release-mode run would invalidate every downstream result.
    pub fn issue(&mut self, cmd: &Command, thread: ThreadId, now: u64) -> Option<(u64, u64)> {
        assert!(self.can_issue(cmd, now), "command {cmd:?} not ready at {now}");
        let timing = self.timing;
        let rank = self.cmd_rank(cmd);
        match cmd.kind {
            CommandKind::Activate => {
                self.banks[cmd.bank].activate(cmd.row, thread, now, &timing);
                self.earliest_activate[rank] = self.earliest_activate[rank].max(now + timing.t_rrd);
                if timing.t_faw > 0 {
                    self.recent_activates[rank].push(now);
                    let faw = timing.t_faw;
                    self.recent_activates[rank].retain(|&t| t + faw > now);
                }
                None
            }
            CommandKind::Read | CommandKind::Write => {
                let is_write = cmd.kind == CommandKind::Write;
                let (start, end) = self.banks[cmd.bank].column(is_write, thread, now, &timing);
                self.data_bus_free_at = self.data_bus_free_at.max(end);
                self.last_data_rank = Some(rank);
                self.earliest_column = self.earliest_column.max(now + timing.t_ccd);
                if is_write {
                    // Write-to-read turnaround, modeled conservatively as
                    // gating *all* column commands channel-wide (the rule
                    // table's `tWTR` rule states the same semantics).
                    self.earliest_column = self.earliest_column.max(end + timing.t_wtr);
                }
                Some((start, end))
            }
            CommandKind::Precharge => {
                self.banks[cmd.bank].precharge(thread, now, &timing);
                None
            }
            CommandKind::Refresh => {
                self.refresh_rank(rank, now);
                None
            }
        }
    }

    /// True if another activate fits into `rank`'s four-activate window at
    /// `now`: an activate at `t` occupies the window until `t + t_faw`.
    fn faw_allows(&self, rank: usize, now: u64) -> bool {
        if self.timing.t_faw == 0 {
            return true;
        }
        let faw = self.timing.t_faw;
        self.recent_activates[rank].iter().filter(|&&t| t + faw > now).count() < 4
    }

    /// Begins an all-bank refresh of `rank` at `now`: every bank of the rank
    /// must be precharged (open rows are force-closed, as a controller would
    /// precharge-all first) and the rank is unavailable for `t_rfc`. Other
    /// ranks are unaffected — tRFC is a rank-level constraint.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn refresh_rank(&mut self, rank: usize, now: u64) {
        let t = self.timing;
        let lo = rank * self.banks_per_rank;
        for b in &mut self.banks[lo..lo + self.banks_per_rank] {
            b.force_precharge_for_refresh(now, &t);
        }
        self.refresh_until[rank] = self.refresh_until[rank].max(now + t.t_rfc);
        self.earliest_activate[rank] = self.earliest_activate[rank].max(now + t.t_rfc);
    }

    /// Refreshes every rank at `now` (identical to [`Channel::refresh_rank`]
    /// on single-rank channels — the legacy all-channel refresh).
    pub fn refresh(&mut self, now: u64) {
        for rank in 0..self.rank_count() {
            self.refresh_rank(rank, now);
        }
    }

    /// Cycle until which `rank` is blocked by an in-progress refresh.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn refresh_until_rank(&self, rank: usize) -> u64 {
        self.refresh_until[rank]
    }

    /// Latest refresh blackout over all ranks (the channel-wide view).
    #[must_use]
    pub fn refresh_until(&self) -> u64 {
        self.refresh_until.iter().copied().max().unwrap_or(0)
    }

    /// Number of banks with an in-flight data transfer at `now` — the
    /// instantaneous bank-level parallelism of the channel.
    #[must_use]
    pub fn banks_servicing(&self, now: u64) -> usize {
        self.banks.iter().filter(|b| b.is_servicing(now)).count()
    }

    /// Number of banks servicing requests of `thread` at `now`.
    #[must_use]
    pub fn banks_servicing_thread(&self, thread: ThreadId, now: u64) -> usize {
        self.banks.iter().filter(|b| b.servicing_thread(now) == Some(thread)).count()
    }
}

impl Channel {
    /// Serializes the channel's mutable state (bank state machines, bus and
    /// per-rank timing windows). Geometry and timing parameters are **not**
    /// written — a restored channel is rebuilt from the same configuration
    /// first and [`Channel::restore_state`] validates the shape matches.
    pub fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.banks);
        w.u64(self.data_bus_free_at);
        w.put(&self.last_data_rank.map(|r| r as u64));
        w.u64(self.earliest_column);
        w.put(&self.earliest_activate);
        w.put(&self.recent_activates);
        w.put(&self.refresh_until);
    }

    /// Restores state captured by [`Channel::save_state`] into a channel
    /// built with the same constructor arguments.
    ///
    /// # Errors
    ///
    /// [`parbs_snap::SnapError::Mismatch`] if the snapshot's bank or rank
    /// count differs from this channel's shape; decoding errors propagate.
    pub fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        let banks: Vec<Bank> = r.get()?;
        if banks.len() != self.banks.len() {
            return Err(parbs_snap::SnapError::Mismatch {
                what: "channel bank count",
                expected: self.banks.len() as u64,
                found: banks.len() as u64,
            });
        }
        let data_bus_free_at = r.u64()?;
        let last_data_rank: Option<u64> = r.get()?;
        let earliest_column = r.u64()?;
        let earliest_activate: Vec<u64> = r.get()?;
        let recent_activates: Vec<Vec<u64>> = r.get()?;
        let refresh_until: Vec<u64> = r.get()?;
        if earliest_activate.len() != self.earliest_activate.len()
            || recent_activates.len() != self.recent_activates.len()
            || refresh_until.len() != self.refresh_until.len()
        {
            return Err(parbs_snap::SnapError::Mismatch {
                what: "channel rank count",
                expected: self.refresh_until.len() as u64,
                found: refresh_until.len() as u64,
            });
        }
        self.banks = banks;
        self.data_bus_free_at = data_bus_free_at;
        self.last_data_rank = last_data_rank.map(|r| r as usize);
        self.earliest_column = earliest_column;
        self.earliest_activate = earliest_activate;
        self.recent_activates = recent_activates;
        self.refresh_until = refresh_until;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestId;

    fn cmd(kind: CommandKind, bank: usize, row: u64) -> Command {
        Command { kind, rank: 0, bank, row, col: 0, request: RequestId(0) }
    }

    /// Command targeting a 2-rank × 8-bank channel (rank derived from the
    /// global bank index).
    fn cmd2(kind: CommandKind, bank: usize, row: u64) -> Command {
        Command { kind, rank: bank / 8, bank, row, col: 0, request: RequestId(0) }
    }

    #[test]
    fn activate_then_read_same_bank() {
        let mut ch = Channel::new(8, TimingParams::ddr2_800());
        let a = cmd(CommandKind::Activate, 0, 3);
        assert!(ch.can_issue(&a, 0));
        ch.issue(&a, ThreadId(0), 0);
        let r = cmd(CommandKind::Read, 0, 3);
        assert!(!ch.can_issue(&r, 10), "tRCD must gate the read");
        assert!(ch.can_issue(&r, 60));
        let (start, end) = ch.issue(&r, ThreadId(0), 60).unwrap();
        assert_eq!((start, end), (120, 160));
    }

    #[test]
    fn trrd_gates_back_to_back_activates() {
        let mut ch = Channel::new(8, TimingParams::ddr2_800());
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        let a1 = cmd(CommandKind::Activate, 1, 1);
        assert!(!ch.can_issue(&a1, 10));
        assert!(ch.can_issue(&a1, 30));
    }

    #[test]
    fn trrd_is_per_rank() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::with_ranks(2, 8, t);
        ch.issue(&cmd2(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        // Same rank: tRRD applies. Other rank: no activate-to-activate gap.
        assert!(!ch.can_issue(&cmd2(CommandKind::Activate, 1, 1), 10));
        assert!(ch.can_issue(&cmd2(CommandKind::Activate, 8, 1), 10), "rank 1 has its own tRRD");
    }

    #[test]
    fn tfaw_is_per_rank() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::with_ranks(2, 8, t);
        for (i, now) in (0..4).map(|i| (i, i as u64 * t.t_rrd)) {
            ch.issue(&cmd2(CommandKind::Activate, i, 1), ThreadId(0), now);
        }
        let after = 4 * t.t_rrd;
        assert!(
            !ch.can_issue(&cmd2(CommandKind::Activate, 4, 1), after),
            "fifth activate in rank 0's tFAW window must be blocked"
        );
        assert!(
            ch.can_issue(&cmd2(CommandKind::Activate, 8, 1), after),
            "rank 1's window is empty — its activate must be legal"
        );
    }

    #[test]
    fn data_bus_serializes_reads_across_banks() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::new(8, t);
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        ch.issue(&cmd(CommandKind::Activate, 1, 1), ThreadId(0), 30);
        ch.issue(&cmd(CommandKind::Read, 0, 1), ThreadId(0), 60);
        // Bank 1's read is tRCD-ready at 90, tCCD-ready at 80, but its data
        // (start = now + tCL) must not start before bank 0's data ends (160).
        let r1 = cmd(CommandKind::Read, 1, 1);
        assert!(!ch.can_issue(&r1, 90), "data bus busy until 160");
        assert!(ch.can_issue(&r1, 100), "data start 160 == bus free");
        let (start, _) = ch.issue(&r1, ThreadId(0), 100).unwrap();
        assert_eq!(start, 160);
    }

    #[test]
    fn rank_switch_pays_trtrs_on_the_data_bus() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::with_ranks(2, 8, t);
        ch.issue(&cmd2(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        ch.issue(&cmd2(CommandKind::Activate, 8, 1), ThreadId(0), 0);
        ch.issue(&cmd2(CommandKind::Read, 0, 1), ThreadId(0), 60);
        // Bank 0 (rank 0) data: [120, 160). A rank-1 read's data must start
        // at ≥ 160 + tRTRS; a same-rank read would clear the bus at 160.
        let same_rank = cmd2(CommandKind::Read, 1, 1);
        let cross_rank = cmd2(CommandKind::Read, 8, 1);
        ch.issue(&cmd2(CommandKind::Activate, 1, 1), ThreadId(0), 30);
        assert!(ch.can_issue(&same_rank, 100), "same-rank data start 160 == bus free");
        assert!(
            !ch.can_issue(&cross_rank, 100),
            "cross-rank data start 160 < 160 + tRTRS ({})",
            t.t_rtrs
        );
        assert!(ch.can_issue(&cross_rank, 100 + t.t_rtrs), "after the switch gap it is legal");
        let (start, _) = ch.issue(&cross_rank, ThreadId(0), 100 + t.t_rtrs).unwrap();
        assert_eq!(start, 160 + t.t_rtrs);
    }

    #[test]
    fn column_to_wrong_row_is_illegal() {
        let mut ch = Channel::new(8, TimingParams::ddr2_800());
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        assert!(!ch.can_issue(&cmd(CommandKind::Read, 0, 2), 60));
    }

    #[test]
    fn precharge_to_closed_bank_is_illegal() {
        let ch = Channel::new(8, TimingParams::ddr2_800());
        assert!(!ch.can_issue(&cmd(CommandKind::Precharge, 0, 0), 1_000));
    }

    #[test]
    fn write_to_read_turnaround() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::new(8, t);
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        ch.issue(&cmd(CommandKind::Activate, 1, 1), ThreadId(0), 30);
        let (_, wend) = ch.issue(&cmd(CommandKind::Write, 0, 1), ThreadId(0), 60).unwrap();
        // Next read must wait for write data end + tWTR.
        let r = cmd(CommandKind::Read, 1, 1);
        assert!(!ch.can_issue(&r, wend));
        assert!(ch.can_issue(&r, wend + t.t_wtr));
    }

    #[test]
    fn twtr_gates_all_columns_after_write_data() {
        // The model applies the write turnaround conservatively to every
        // following column command channel-wide — the same semantics the
        // rule table's `tWTR` rule declares, so gating, checker and oracle
        // agree by construction.
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::new(8, t);
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        ch.issue(&cmd(CommandKind::Activate, 1, 1), ThreadId(0), 30);
        ch.issue(&cmd(CommandKind::Write, 0, 1), ThreadId(0), 60);
        // First write's data: [110, 150); columns blocked until 150 + tWTR.
        let w1 = cmd(CommandKind::Write, 1, 1);
        let r1 = cmd(CommandKind::Read, 1, 1);
        assert!(!ch.can_issue(&w1, 170));
        assert!(!ch.can_issue(&r1, 170));
        assert!(ch.can_issue(&w1, 180));
        assert!(ch.can_issue(&r1, 180));
    }

    #[test]
    fn refresh_in_rank0_does_not_stall_rank1() {
        // The satellite fix: tRFC is a rank-level constraint, so a refresh
        // of rank 0 must leave rank 1 free to activate immediately.
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::with_ranks(2, 8, t);
        ch.issue(&Command::refresh(0, RequestId(u64::MAX)), ThreadId(0), 0);
        let in_blackout = t.t_rfc / 2;
        assert!(
            !ch.can_issue(&cmd2(CommandKind::Activate, 0, 1), in_blackout),
            "rank 0 is in its tRFC blackout"
        );
        assert!(
            ch.can_issue(&cmd2(CommandKind::Activate, 8, 1), in_blackout),
            "rank 1 must not be stalled by rank 0's refresh"
        );
        assert_eq!(ch.refresh_until_rank(0), t.t_rfc);
        assert_eq!(ch.refresh_until_rank(1), 0);
    }

    #[test]
    fn refresh_closes_open_rows() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::new(8, t);
        ch.issue(&cmd(CommandKind::Activate, 0, 5), ThreadId(0), 0);
        assert_eq!(ch.bank(0).open_row(), Some(5));
        ch.refresh(1_000);
        assert_eq!(ch.bank(0).open_row(), None);
        assert!(ch.refresh_until() >= 1_000 + t.t_rfc);
        // Nothing can issue during the refresh.
        assert!(!ch.can_issue(&cmd(CommandKind::Activate, 0, 5), 1_000 + t.t_rfc - 10));
        assert!(ch.can_issue(&cmd(CommandKind::Activate, 0, 5), 1_000 + t.t_rfc));
    }

    #[test]
    fn blp_counts_in_flight_banks() {
        let t = TimingParams::ddr2_800();
        let mut ch = Channel::new(8, t);
        ch.issue(&cmd(CommandKind::Activate, 0, 1), ThreadId(0), 0);
        ch.issue(&cmd(CommandKind::Activate, 1, 1), ThreadId(1), 30);
        ch.issue(&cmd(CommandKind::Read, 0, 1), ThreadId(0), 60);
        ch.issue(&cmd(CommandKind::Read, 1, 1), ThreadId(1), 100);
        // Bank0 data: [120,160); bank1 data: [160,200). Transfers serialize,
        // but both banks count as servicing while their data is in flight.
        assert_eq!(ch.banks_servicing(130), 2);
        assert_eq!(ch.banks_servicing_thread(ThreadId(0), 130), 1);
        assert_eq!(ch.banks_servicing_thread(ThreadId(1), 130), 1);
        assert_eq!(ch.banks_servicing(170), 1);
    }
}
