//! Controller statistics: throughput, row-buffer categories, latency, and
//! the paper's bank-level-parallelism (BLP) measurement.

use crate::ThreadId;
use parbs_metrics::LatencyHistogram;

/// Measures bank-level parallelism per the paper's definition: "the average
/// number of requests being serviced in the DRAM banks when there is at
/// least one request being serviced". Sampled once per DRAM cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlpTracker {
    sum: u64,
    samples: u64,
}

impl BlpTracker {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an instantaneous bank-parallelism observation; zero
    /// observations (no request in service) are skipped per the definition.
    pub fn record(&mut self, banks_busy: usize) {
        if banks_busy > 0 {
            self.sum += banks_busy as u64;
            self.samples += 1;
        }
    }

    /// The average BLP over all non-idle samples (0.0 if always idle).
    #[must_use]
    pub fn average(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// Aggregate statistics for one controller (one channel).
#[derive(Debug, Clone, Default)]
pub struct ControllerStats {
    /// Read requests accepted into the buffer.
    pub reads_received: u64,
    /// Write requests accepted into the buffer.
    pub writes_received: u64,
    /// Read requests fully serviced.
    pub reads_completed: u64,
    /// Write requests fully serviced.
    pub writes_completed: u64,
    /// Requests whose first command was a column command (row hit).
    pub row_hits: u64,
    /// Requests whose first command was an activate (row closed).
    pub row_closed: u64,
    /// Requests whose first command was a precharge (row conflict).
    pub row_conflicts: u64,
    /// Total DRAM commands placed on the command bus.
    pub commands_issued: u64,
    /// All-bank refreshes issued.
    pub refreshes: u64,
    /// Sum of read latencies (arrival → data at core), for averaging.
    pub total_read_latency: u64,
    /// Largest single read latency observed — the paper's worst-case
    /// request latency (Table 4, "WC lat.").
    pub worst_case_latency: u64,
    /// Channel-wide bank-level parallelism.
    pub blp: BlpTracker,
    /// Per-thread bank-level parallelism (grown on demand).
    pub thread_blp: Vec<BlpTracker>,
    /// Per-thread read row-category counters `(hits, closed, conflicts)`.
    pub thread_read_categories: Vec<(u64, u64, u64)>,
    /// Per-thread worst-case read latency.
    pub thread_worst_case: Vec<u64>,
    /// Distribution of read latencies (arrival → data at core).
    pub read_latency: LatencyHistogram,
}

impl ControllerStats {
    /// Row-buffer hit rate over all serviced requests.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_closed + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Mean read latency in cycles (0.0 before any read completes).
    #[must_use]
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_completed == 0 {
            0.0
        } else {
            self.total_read_latency as f64 / self.reads_completed as f64
        }
    }

    /// Records one per-thread BLP observation (banks currently working for
    /// the thread). Called by the controller once per DRAM cycle.
    pub fn record_thread_blp(&mut self, thread: ThreadId, banks: usize) {
        self.thread_tracker(thread).record(banks);
    }

    /// Records a completed read's latency for global and per-thread maxima.
    pub fn record_read_latency(&mut self, latency: u64, thread: ThreadId) {
        self.read_latency.record(latency);
        self.total_read_latency += latency;
        self.worst_case_latency = self.worst_case_latency.max(latency);
        if self.thread_worst_case.len() <= thread.0 {
            self.thread_worst_case.resize(thread.0 + 1, 0);
        }
        self.thread_worst_case[thread.0] = self.thread_worst_case[thread.0].max(latency);
    }

    /// Average BLP observed for `thread` (0.0 if never sampled).
    #[must_use]
    pub fn thread_blp_average(&self, thread: ThreadId) -> f64 {
        self.thread_blp.get(thread.0).map_or(0.0, BlpTracker::average)
    }

    /// Records the row-buffer category of a read at first service.
    pub fn record_read_category(&mut self, thread: ThreadId, kind: crate::CommandKind) {
        if self.thread_read_categories.len() <= thread.0 {
            self.thread_read_categories.resize(thread.0 + 1, (0, 0, 0));
        }
        let slot = &mut self.thread_read_categories[thread.0];
        match kind {
            crate::CommandKind::Read | crate::CommandKind::Write => slot.0 += 1,
            crate::CommandKind::Activate => slot.1 += 1,
            crate::CommandKind::Precharge => slot.2 += 1,
            crate::CommandKind::Refresh => {}
        }
    }

    /// Read row-hit rate of one thread (0.0 if it had no reads).
    #[must_use]
    pub fn thread_read_hit_rate(&self, thread: ThreadId) -> f64 {
        let Some((h, c, x)) = self.thread_read_categories.get(thread.0) else {
            return 0.0;
        };
        let total = h + c + x;
        if total == 0 {
            0.0
        } else {
            *h as f64 / total as f64
        }
    }

    fn thread_tracker(&mut self, thread: ThreadId) -> &mut BlpTracker {
        if self.thread_blp.len() <= thread.0 {
            self.thread_blp.resize(thread.0 + 1, BlpTracker::new());
        }
        &mut self.thread_blp[thread.0]
    }
}

impl parbs_snap::Snap for BlpTracker {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.sum);
        w.u64(self.samples);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(BlpTracker { sum: r.u64()?, samples: r.u64()? })
    }
}

impl parbs_snap::Snap for ControllerStats {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.reads_received);
        w.u64(self.writes_received);
        w.u64(self.reads_completed);
        w.u64(self.writes_completed);
        w.u64(self.row_hits);
        w.u64(self.row_closed);
        w.u64(self.row_conflicts);
        w.u64(self.commands_issued);
        w.u64(self.refreshes);
        w.u64(self.total_read_latency);
        w.u64(self.worst_case_latency);
        w.put(&self.blp);
        w.put(&self.thread_blp);
        w.put(&self.thread_read_categories);
        w.put(&self.thread_worst_case);
        w.put(&self.read_latency);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(ControllerStats {
            reads_received: r.u64()?,
            writes_received: r.u64()?,
            reads_completed: r.u64()?,
            writes_completed: r.u64()?,
            row_hits: r.u64()?,
            row_closed: r.u64()?,
            row_conflicts: r.u64()?,
            commands_issued: r.u64()?,
            refreshes: r.u64()?,
            total_read_latency: r.u64()?,
            worst_case_latency: r.u64()?,
            blp: r.get()?,
            thread_blp: r.get()?,
            thread_read_categories: r.get()?,
            thread_worst_case: r.get()?,
            read_latency: r.get()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blp_skips_idle_samples() {
        let mut t = BlpTracker::new();
        t.record(0);
        t.record(2);
        t.record(4);
        t.record(0);
        assert!((t.average() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn blp_empty_average_is_zero() {
        assert_eq!(BlpTracker::new().average(), 0.0);
    }

    #[test]
    fn hit_rate_counts_categories() {
        let s =
            ControllerStats { row_hits: 3, row_closed: 1, row_conflicts: 0, ..Default::default() };
        assert!((s.row_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn worst_case_latency_tracks_maximum() {
        let mut s = ControllerStats::default();
        s.record_read_latency(100, ThreadId(0));
        s.record_read_latency(700, ThreadId(1));
        s.record_read_latency(300, ThreadId(0));
        assert_eq!(s.worst_case_latency, 700);
        assert_eq!(s.thread_worst_case[0], 300);
        assert_eq!(s.thread_worst_case[1], 700);
        assert_eq!(s.read_latency.count(), 3);
        assert_eq!(s.read_latency.max(), 700);
    }
}
