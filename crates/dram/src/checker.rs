//! Independent DRAM protocol checker.
//!
//! [`ProtocolChecker`] re-derives bank state from the observed command stream
//! (without trusting the controller's bookkeeping) and reports the first
//! violated timing or state constraint. The property-based tests run it
//! against the controller under random request streams and schedulers.
//!
//! The timing validation is **evaluated from the declarative rule table**
//! ([`crate::TIMING_RULES`], via [`RuleEngine`]) rather than hand-coded:
//! every pairwise constraint the checker enforces is stated once, as data,
//! in `rules.rs`, and the same table drives the reference oracle the
//! `parbs-analyze` differential model checker uses to cross-validate
//! [`crate::Channel::can_issue`]. The checker layers on top of the table the
//! parts that are not timing rules: command-clock alignment, rank/bank index
//! validity, and bank-state legality (no `ACT` on an open bank, column row
//! match, no `PRE` on a closed bank).

use crate::{Command, CommandKind, RuleEngine, TimingParams, DRAM_CYCLE};

/// A violated DRAM protocol rule, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// Human-readable rule name (e.g. `"tRCD"`, `"bank state"`).
    pub rule: String,
    /// The offending command.
    pub command: Command,
    /// Cycle at which the command was issued.
    pub at: u64,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated by {:?} at cycle {}", self.rule, self.command, self.at)
    }
}

impl std::error::Error for ProtocolViolation {}

/// Observes a channel's command stream and validates every constraint the
/// model enforces: bank state legality, tRCD, tRP, tRAS, tRC, per-rank tRRD
/// and tFAW, tCCD, tRTP, tWR, tWTR, per-rank tRFC, tRTRS on cross-rank data
/// transfers, rank/bank index consistency, data-bus exclusivity, and one
/// command per DRAM cycle.
#[derive(Debug, Clone)]
pub struct ProtocolChecker {
    engine: RuleEngine,
    ranks: usize,
    banks_per_rank: usize,
    open_rows: Vec<Option<u64>>,
}

impl ProtocolChecker {
    /// Creates a checker for a single-rank channel with `banks` banks.
    #[must_use]
    pub fn new(banks: usize, timing: TimingParams) -> Self {
        ProtocolChecker::with_ranks(1, banks, timing)
    }

    /// Creates a checker for a channel of `ranks` ranks × `banks_per_rank`
    /// banks (bank indices are channel-global and rank-major).
    #[must_use]
    pub fn with_ranks(ranks: usize, banks_per_rank: usize, timing: TimingParams) -> Self {
        ProtocolChecker {
            engine: RuleEngine::new(ranks, banks_per_rank, timing),
            ranks,
            banks_per_rank,
            open_rows: vec![None; ranks * banks_per_rank],
        }
    }

    fn violation(&self, rule: &str, cmd: &Command, at: u64) -> ProtocolViolation {
        ProtocolViolation { rule: rule.to_owned(), command: *cmd, at }
    }

    /// Validates `cmd` at cycle `at` against the derived state **without
    /// recording it** — the probe entry point the `parbs-analyze`
    /// differential model checker uses to test many candidate cycles
    /// against one state.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule (evaluation order: clock alignment,
    /// index validity, bank-state legality, then the rule table in
    /// [`crate::TIMING_RULES`] order).
    pub fn check(&self, cmd: &Command, at: u64) -> Result<(), ProtocolViolation> {
        if !at.is_multiple_of(DRAM_CYCLE) {
            return Err(self.violation("command-clock alignment", cmd, at));
        }
        if cmd.rank >= self.ranks {
            return Err(self.violation("rank index range", cmd, at));
        }
        if cmd.kind != CommandKind::Refresh {
            if cmd.bank >= self.open_rows.len() {
                return Err(self.violation("bank index range", cmd, at));
            }
            if cmd.rank != cmd.bank / self.banks_per_rank {
                return Err(self.violation("rank/bank consistency", cmd, at));
            }
        }
        // Bank-state legality — a property of the re-derived state machine,
        // checked outside the timing-rule table.
        match cmd.kind {
            CommandKind::Activate => {
                if self.open_rows[cmd.bank].is_some() {
                    return Err(self.violation("bank state (ACT on open bank)", cmd, at));
                }
            }
            CommandKind::Read | CommandKind::Write => match self.open_rows[cmd.bank] {
                Some(row) if row == cmd.row => {}
                Some(_) => return Err(self.violation("row match (column to wrong row)", cmd, at)),
                None => return Err(self.violation("bank state (column on closed)", cmd, at)),
            },
            CommandKind::Precharge => {
                if self.open_rows[cmd.bank].is_none() {
                    return Err(self.violation("bank state (PRE on closed bank)", cmd, at));
                }
            }
            CommandKind::Refresh => {}
        }
        // Every timing constraint comes from the declarative table.
        if let Some(rule) = self.engine.first_violation(cmd.kind, cmd.rank, cmd.bank, at) {
            return Err(self.violation(rule, cmd, at));
        }
        Ok(())
    }

    /// Validates `cmd` issued at cycle `at` and updates the derived state.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule (see [`ProtocolChecker::check`]); on
    /// error nothing is recorded, so the checker may keep observing (though
    /// later violations may be knock-on effects of the first).
    pub fn observe(&mut self, cmd: &Command, at: u64) -> Result<(), ProtocolViolation> {
        self.check(cmd, at)?;
        self.engine.record(cmd.kind, cmd.rank, cmd.bank, at);
        match cmd.kind {
            CommandKind::Activate => self.open_rows[cmd.bank] = Some(cmd.row),
            CommandKind::Precharge => self.open_rows[cmd.bank] = None,
            CommandKind::Refresh => {
                // Refresh force-precharges the rank: its open rows are lost.
                let lo = cmd.rank * self.banks_per_rank;
                for row in &mut self.open_rows[lo..lo + self.banks_per_rank] {
                    *row = None;
                }
            }
            CommandKind::Read | CommandKind::Write => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestId;

    /// Command for an 8-banks-per-rank layout (rank = bank / 8): correct for
    /// both the single-rank `checker()` and the 2-rank `checker2()`.
    fn cmd(kind: CommandKind, bank: usize, row: u64) -> Command {
        Command { kind, rank: bank / 8, bank, row, col: 0, request: RequestId(0) }
    }

    fn checker() -> ProtocolChecker {
        ProtocolChecker::new(8, TimingParams::ddr2_800())
    }

    fn checker2() -> ProtocolChecker {
        ProtocolChecker::with_ranks(2, 8, TimingParams::ddr2_800())
    }

    #[test]
    fn legal_sequence_passes() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Read, 0, 1), 60).unwrap();
        c.observe(&cmd(CommandKind::Precharge, 0, 1), 180).unwrap();
        c.observe(&cmd(CommandKind::Activate, 0, 2), 240).unwrap();
    }

    #[test]
    fn detects_trcd_violation() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Read, 0, 1), 50).unwrap_err();
        assert_eq!(err.rule, "tRCD");
    }

    #[test]
    fn detects_act_on_open_bank() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Activate, 0, 2), 300).unwrap_err();
        assert!(err.rule.contains("ACT on open"));
    }

    #[test]
    fn detects_column_to_wrong_row() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Read, 0, 2), 60).unwrap_err();
        assert!(err.rule.contains("row match"));
    }

    #[test]
    fn detects_tras_violation() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Read, 0, 1), 60).unwrap();
        let err = c.observe(&cmd(CommandKind::Precharge, 0, 1), 170).unwrap_err();
        assert_eq!(err.rule, "tRAS");
    }

    #[test]
    fn detects_data_bus_conflict() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Activate, 1, 1), 30).unwrap();
        c.observe(&cmd(CommandKind::Read, 0, 1), 60).unwrap();
        // Read at 90 → data [150, 190) overlaps bank 0's data [120, 160).
        let err = c.observe(&cmd(CommandKind::Read, 1, 1), 90).unwrap_err();
        assert_eq!(err.rule, "data bus conflict");
    }

    #[test]
    fn detects_trrd_violation() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Activate, 1, 1), 20).unwrap_err();
        assert_eq!(err.rule, "tRRD");
    }

    #[test]
    fn trrd_is_per_rank() {
        // Activates to different ranks are not tRRD-constrained; a second
        // activate in the *same* rank inside the window still is.
        let mut c = checker2();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Activate, 8, 1), 10).unwrap();
        let err = c.observe(&cmd(CommandKind::Activate, 1, 1), 20).unwrap_err();
        assert_eq!(err.rule, "tRRD", "rank 0's window still applies within rank 0");
    }

    #[test]
    fn tfaw_is_per_rank() {
        let t = TimingParams::ddr2_800();
        let mut c = checker2();
        for i in 0..4u64 {
            c.observe(&cmd(CommandKind::Activate, i as usize, 1), i * t.t_rrd).unwrap();
        }
        // Rank 1 is free even though rank 0's window is full...
        c.observe(&cmd(CommandKind::Activate, 8, 1), 4 * t.t_rrd).unwrap();
        // ...but a fifth rank-0 activate inside the window is a violation.
        let err = c.observe(&cmd(CommandKind::Activate, 4, 1), 4 * t.t_rrd + 10).unwrap_err();
        assert_eq!(err.rule, "tFAW");
    }

    #[test]
    fn detects_trtrs_violation_on_cross_rank_columns() {
        let t = TimingParams::ddr2_800();
        let mut c = checker2();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Activate, 8, 1), 10).unwrap();
        c.observe(&cmd(CommandKind::Read, 0, 1), 60).unwrap();
        // Rank 0 data: [120, 160). A rank-1 read at 100 starts its data at
        // 160 — clear of the bus, but inside the tRTRS switch gap.
        let mut gap = c.clone();
        let err = gap.observe(&cmd(CommandKind::Read, 8, 1), 100).unwrap_err();
        assert_eq!(err.rule, "tRTRS");
        // Same timing to the *same* rank is legal (no switch)...
        let mut same = c.clone();
        same.observe(&cmd(CommandKind::Activate, 1, 1), 70).unwrap();
        same.observe(&cmd(CommandKind::Read, 1, 1), 130).unwrap();
        // ...and the cross-rank read is legal once the gap has passed.
        c.observe(&cmd(CommandKind::Read, 8, 1), 100 + t.t_rtrs).unwrap();
    }

    #[test]
    fn detects_rank_bank_inconsistency() {
        let mut c = checker2();
        let bad = Command {
            kind: CommandKind::Activate,
            rank: 1,
            bank: 0,
            row: 1,
            col: 0,
            request: RequestId(0),
        };
        let err = c.observe(&bad, 0).unwrap_err();
        assert_eq!(err.rule, "rank/bank consistency");
    }

    #[test]
    fn refresh_blocks_only_its_own_rank() {
        let t = TimingParams::ddr2_800();
        let mut c = checker2();
        c.observe(&Command::refresh(0, RequestId(u64::MAX)), 0).unwrap();
        // Rank 1 activates freely during rank 0's tRFC blackout.
        c.observe(&cmd(CommandKind::Activate, 8, 1), 10).unwrap();
        // Rank 0 does not.
        let err = c.observe(&cmd(CommandKind::Activate, 0, 1), t.t_rfc - 10).unwrap_err();
        assert_eq!(err.rule, "tRFC");
    }

    #[test]
    fn refresh_during_own_trfc_is_a_violation() {
        // Historical gap closed by the rule table's `tRFC: Ref → Any` scope:
        // a second refresh of the *same* rank inside its blackout is illegal.
        let t = TimingParams::ddr2_800();
        let mut c = checker2();
        c.observe(&Command::refresh(0, RequestId(u64::MAX)), 0).unwrap();
        let err = c.observe(&Command::refresh(0, RequestId(u64::MAX)), t.t_rfc - 10).unwrap_err();
        assert_eq!(err.rule, "tRFC");
        // The other rank may refresh concurrently.
        c.observe(&Command::refresh(1, RequestId(u64::MAX)), 10).unwrap();
    }

    #[test]
    fn detects_command_bus_overlap() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Activate, 1, 1), 0).unwrap_err();
        assert_eq!(err.rule, "one command per DRAM cycle");
    }

    #[test]
    fn detects_misaligned_command() {
        let mut c = checker();
        let err = c.observe(&cmd(CommandKind::Activate, 0, 1), 7).unwrap_err();
        assert!(err.rule.contains("alignment"));
    }

    #[test]
    fn detects_twtr_violation() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Activate, 1, 1), 30).unwrap();
        c.observe(&cmd(CommandKind::Write, 0, 1), 60).unwrap();
        // Write data ends at 60 + 50 + 40 = 150; reads blocked until 180.
        let err = c.observe(&cmd(CommandKind::Read, 1, 1), 160).unwrap_err();
        assert_eq!(err.rule, "tWTR");
    }
}
