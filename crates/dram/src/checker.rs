//! Independent DRAM protocol checker.
//!
//! [`ProtocolChecker`] re-derives bank state from the observed command stream
//! (without trusting the controller's bookkeeping) and reports the first
//! violated timing or state constraint. The property-based tests run it
//! against the controller under random request streams and schedulers.
//!
//! Rank-level constraints (tRRD, tFAW, tRFC) are tracked per rank;
//! channel-level constraints (tCCD, tWTR, the data bus and its tRTRS
//! rank-switch penalty) are shared, mirroring [`crate::Channel`].

use crate::{Command, CommandKind, TimingParams, DRAM_CYCLE};

/// A violated DRAM protocol rule, with enough context to debug it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolViolation {
    /// Human-readable rule name (e.g. `"tRCD"`, `"bank state"`).
    pub rule: String,
    /// The offending command.
    pub command: Command,
    /// Cycle at which the command was issued.
    pub at: u64,
}

impl std::fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} violated by {:?} at cycle {}", self.rule, self.command, self.at)
    }
}

impl std::error::Error for ProtocolViolation {}

#[derive(Debug, Clone, Copy, Default)]
struct BankRecord {
    open_row: Option<u64>,
    last_act: Option<u64>,
    last_pre: Option<u64>,
    last_read: Option<u64>,
    /// End of the last write's data transfer (for tWR).
    last_write_data_end: Option<u64>,
    /// Bank blocked until this cycle by its rank's refresh.
    refresh_block: u64,
}

/// Observes a channel's command stream and validates every constraint the
/// model enforces: bank state legality, tRCD, tRP, tRAS, tRC, per-rank tRRD
/// and tFAW, tCCD, tRTP, tWR, tWTR, per-rank tRFC, tRTRS on cross-rank data
/// transfers, rank/bank index consistency, data-bus exclusivity, and one
/// command per DRAM cycle.
#[derive(Debug, Clone)]
pub struct ProtocolChecker {
    timing: TimingParams,
    banks: Vec<BankRecord>,
    banks_per_rank: usize,
    last_cmd_at: Option<u64>,
    /// Last activate per rank (tRRD is a rank constraint).
    last_act_rank: Vec<Option<u64>>,
    last_col_any: Option<u64>,
    data_busy_until: u64,
    /// Rank that drove the last data transfer (for tRTRS).
    last_data_rank: Option<usize>,
    wtr_block_until: u64,
    /// Recent activates per rank (tFAW sliding window).
    recent_activates: Vec<Vec<u64>>,
}

impl ProtocolChecker {
    /// Creates a checker for a single-rank channel with `banks` banks.
    #[must_use]
    pub fn new(banks: usize, timing: TimingParams) -> Self {
        ProtocolChecker::with_ranks(1, banks, timing)
    }

    /// Creates a checker for a channel of `ranks` ranks × `banks_per_rank`
    /// banks (bank indices are channel-global and rank-major).
    #[must_use]
    pub fn with_ranks(ranks: usize, banks_per_rank: usize, timing: TimingParams) -> Self {
        ProtocolChecker {
            timing,
            banks: vec![BankRecord::default(); ranks * banks_per_rank],
            banks_per_rank,
            last_cmd_at: None,
            last_act_rank: vec![None; ranks],
            last_col_any: None,
            data_busy_until: 0,
            last_data_rank: None,
            wtr_block_until: 0,
            recent_activates: vec![Vec::new(); ranks],
        }
    }

    fn violation(&self, rule: &str, cmd: &Command, at: u64) -> ProtocolViolation {
        ProtocolViolation { rule: rule.to_owned(), command: *cmd, at }
    }

    /// Validates `cmd` issued at cycle `at` and updates the derived state.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule; after an error the checker state is
    /// unspecified and the checker should be discarded.
    pub fn observe(&mut self, cmd: &Command, at: u64) -> Result<(), ProtocolViolation> {
        let t = self.timing;
        let ranks = self.last_act_rank.len();
        if !at.is_multiple_of(DRAM_CYCLE) {
            return Err(self.violation("command-clock alignment", cmd, at));
        }
        if let Some(prev) = self.last_cmd_at {
            if at < prev + DRAM_CYCLE {
                return Err(self.violation("one command per DRAM cycle", cmd, at));
            }
        }
        if cmd.rank >= ranks {
            return Err(self.violation("rank index range", cmd, at));
        }
        if cmd.kind == CommandKind::Refresh {
            // Per-rank refresh: quiet data bus, then blank out this rank only.
            if at < self.data_busy_until {
                return Err(self.violation("refresh during data transfer", cmd, at));
            }
            let lo = cmd.rank * self.banks_per_rank;
            for b in &mut self.banks[lo..lo + self.banks_per_rank] {
                b.open_row = None;
                b.refresh_block = at + t.t_rfc;
            }
            self.last_cmd_at = Some(at);
            return Ok(());
        }
        if cmd.bank >= self.banks.len() {
            return Err(self.violation("bank index range", cmd, at));
        }
        if cmd.rank != cmd.bank / self.banks_per_rank {
            return Err(self.violation("rank/bank consistency", cmd, at));
        }
        let rank = cmd.rank;
        let bank = self.banks[cmd.bank];
        if at < bank.refresh_block {
            return Err(self.violation("tRFC", cmd, at));
        }
        match cmd.kind {
            CommandKind::Refresh => unreachable!("handled above"),
            CommandKind::Activate => {
                if bank.open_row.is_some() {
                    return Err(self.violation("bank state (ACT on open bank)", cmd, at));
                }
                if let Some(pre) = bank.last_pre {
                    if at < pre + t.t_rp {
                        return Err(self.violation("tRP", cmd, at));
                    }
                }
                if let Some(act) = bank.last_act {
                    if at < act + t.t_rc {
                        return Err(self.violation("tRC", cmd, at));
                    }
                }
                if let Some(any) = self.last_act_rank[rank] {
                    if at < any + t.t_rrd {
                        return Err(self.violation("tRRD", cmd, at));
                    }
                }
                if t.t_faw > 0 {
                    self.recent_activates[rank].retain(|&x| x + t.t_faw > at);
                    if self.recent_activates[rank].len() >= 4 {
                        return Err(self.violation("tFAW", cmd, at));
                    }
                    self.recent_activates[rank].push(at);
                }
                self.banks[cmd.bank].open_row = Some(cmd.row);
                self.banks[cmd.bank].last_act = Some(at);
                self.last_act_rank[rank] = Some(at);
            }
            CommandKind::Read | CommandKind::Write => {
                let is_write = cmd.kind == CommandKind::Write;
                match bank.open_row {
                    Some(row) if row == cmd.row => {}
                    Some(_) => {
                        return Err(self.violation("row match (column to wrong row)", cmd, at))
                    }
                    None => return Err(self.violation("bank state (column on closed)", cmd, at)),
                }
                let act = bank.last_act.expect("open bank must have an activate");
                if at < act + t.t_rcd {
                    return Err(self.violation("tRCD", cmd, at));
                }
                if let Some(col) = self.last_col_any {
                    if at < col + t.t_ccd {
                        return Err(self.violation("tCCD", cmd, at));
                    }
                }
                if !is_write && at < self.wtr_block_until {
                    return Err(self.violation("tWTR", cmd, at));
                }
                let start = at + if is_write { t.t_cwl } else { t.t_cl };
                let end = start + t.t_burst;
                if start < self.data_busy_until {
                    return Err(self.violation("data bus conflict", cmd, at));
                }
                if let Some(last) = self.last_data_rank {
                    if last != rank && start < self.data_busy_until + t.t_rtrs {
                        return Err(self.violation("tRTRS", cmd, at));
                    }
                }
                self.data_busy_until = end;
                self.last_data_rank = Some(rank);
                self.last_col_any = Some(at);
                if is_write {
                    self.banks[cmd.bank].last_write_data_end = Some(end);
                    self.wtr_block_until = self.wtr_block_until.max(end + t.t_wtr);
                } else {
                    self.banks[cmd.bank].last_read = Some(at);
                }
            }
            CommandKind::Precharge => {
                if bank.open_row.is_none() {
                    return Err(self.violation("bank state (PRE on closed bank)", cmd, at));
                }
                let act = bank.last_act.expect("open bank must have an activate");
                if at < act + t.t_ras {
                    return Err(self.violation("tRAS", cmd, at));
                }
                if let Some(rd) = bank.last_read {
                    if at < rd + t.t_rtp {
                        return Err(self.violation("tRTP", cmd, at));
                    }
                }
                if let Some(wend) = bank.last_write_data_end {
                    if at < wend + t.t_wr {
                        return Err(self.violation("tWR", cmd, at));
                    }
                }
                self.banks[cmd.bank].open_row = None;
                self.banks[cmd.bank].last_pre = Some(at);
            }
        }
        self.last_cmd_at = Some(at);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestId;

    /// Command for an 8-banks-per-rank layout (rank = bank / 8): correct for
    /// both the single-rank `checker()` and the 2-rank `checker2()`.
    fn cmd(kind: CommandKind, bank: usize, row: u64) -> Command {
        Command { kind, rank: bank / 8, bank, row, col: 0, request: RequestId(0) }
    }

    fn checker() -> ProtocolChecker {
        ProtocolChecker::new(8, TimingParams::ddr2_800())
    }

    fn checker2() -> ProtocolChecker {
        ProtocolChecker::with_ranks(2, 8, TimingParams::ddr2_800())
    }

    #[test]
    fn legal_sequence_passes() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Read, 0, 1), 60).unwrap();
        c.observe(&cmd(CommandKind::Precharge, 0, 1), 180).unwrap();
        c.observe(&cmd(CommandKind::Activate, 0, 2), 240).unwrap();
    }

    #[test]
    fn detects_trcd_violation() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Read, 0, 1), 50).unwrap_err();
        assert_eq!(err.rule, "tRCD");
    }

    #[test]
    fn detects_act_on_open_bank() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Activate, 0, 2), 300).unwrap_err();
        assert!(err.rule.contains("ACT on open"));
    }

    #[test]
    fn detects_column_to_wrong_row() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Read, 0, 2), 60).unwrap_err();
        assert!(err.rule.contains("row match"));
    }

    #[test]
    fn detects_tras_violation() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Read, 0, 1), 60).unwrap();
        let err = c.observe(&cmd(CommandKind::Precharge, 0, 1), 170).unwrap_err();
        assert_eq!(err.rule, "tRAS");
    }

    #[test]
    fn detects_data_bus_conflict() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Activate, 1, 1), 30).unwrap();
        c.observe(&cmd(CommandKind::Read, 0, 1), 60).unwrap();
        // Read at 90 → data [150, 190) overlaps bank 0's data [120, 160).
        let err = c.observe(&cmd(CommandKind::Read, 1, 1), 90).unwrap_err();
        assert_eq!(err.rule, "data bus conflict");
    }

    #[test]
    fn detects_trrd_violation() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Activate, 1, 1), 20).unwrap_err();
        assert_eq!(err.rule, "tRRD");
    }

    #[test]
    fn trrd_is_per_rank() {
        // Activates to different ranks are not tRRD-constrained; a second
        // activate in the *same* rank inside the window still is.
        let mut c = checker2();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Activate, 8, 1), 10).unwrap();
        let err = c.observe(&cmd(CommandKind::Activate, 1, 1), 20).unwrap_err();
        assert_eq!(err.rule, "tRRD", "rank 0's window still applies within rank 0");
    }

    #[test]
    fn tfaw_is_per_rank() {
        let t = TimingParams::ddr2_800();
        let mut c = checker2();
        for i in 0..4u64 {
            c.observe(&cmd(CommandKind::Activate, i as usize, 1), i * t.t_rrd).unwrap();
        }
        // Rank 1 is free even though rank 0's window is full...
        c.observe(&cmd(CommandKind::Activate, 8, 1), 4 * t.t_rrd).unwrap();
        // ...but a fifth rank-0 activate inside the window is a violation.
        let err = c.observe(&cmd(CommandKind::Activate, 4, 1), 4 * t.t_rrd + 10).unwrap_err();
        assert_eq!(err.rule, "tFAW");
    }

    #[test]
    fn detects_trtrs_violation_on_cross_rank_columns() {
        let t = TimingParams::ddr2_800();
        let mut c = checker2();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Activate, 8, 1), 10).unwrap();
        c.observe(&cmd(CommandKind::Read, 0, 1), 60).unwrap();
        // Rank 0 data: [120, 160). A rank-1 read at 100 starts its data at
        // 160 — clear of the bus, but inside the tRTRS switch gap.
        let mut gap = c.clone();
        let err = gap.observe(&cmd(CommandKind::Read, 8, 1), 100).unwrap_err();
        assert_eq!(err.rule, "tRTRS");
        // Same timing to the *same* rank is legal (no switch)...
        let mut same = c.clone();
        same.observe(&cmd(CommandKind::Activate, 1, 1), 70).unwrap();
        same.observe(&cmd(CommandKind::Read, 1, 1), 130).unwrap();
        // ...and the cross-rank read is legal once the gap has passed.
        c.observe(&cmd(CommandKind::Read, 8, 1), 100 + t.t_rtrs).unwrap();
    }

    #[test]
    fn detects_rank_bank_inconsistency() {
        let mut c = checker2();
        let bad = Command {
            kind: CommandKind::Activate,
            rank: 1,
            bank: 0,
            row: 1,
            col: 0,
            request: RequestId(0),
        };
        let err = c.observe(&bad, 0).unwrap_err();
        assert_eq!(err.rule, "rank/bank consistency");
    }

    #[test]
    fn refresh_blocks_only_its_own_rank() {
        let t = TimingParams::ddr2_800();
        let mut c = checker2();
        c.observe(&Command::refresh(0, RequestId(u64::MAX)), 0).unwrap();
        // Rank 1 activates freely during rank 0's tRFC blackout.
        c.observe(&cmd(CommandKind::Activate, 8, 1), 10).unwrap();
        // Rank 0 does not.
        let err = c.observe(&cmd(CommandKind::Activate, 0, 1), t.t_rfc - 10).unwrap_err();
        assert_eq!(err.rule, "tRFC");
    }

    #[test]
    fn detects_command_bus_overlap() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        let err = c.observe(&cmd(CommandKind::Activate, 1, 1), 0).unwrap_err();
        assert_eq!(err.rule, "one command per DRAM cycle");
    }

    #[test]
    fn detects_misaligned_command() {
        let mut c = checker();
        let err = c.observe(&cmd(CommandKind::Activate, 0, 1), 7).unwrap_err();
        assert!(err.rule.contains("alignment"));
    }

    #[test]
    fn detects_twtr_violation() {
        let mut c = checker();
        c.observe(&cmd(CommandKind::Activate, 0, 1), 0).unwrap();
        c.observe(&cmd(CommandKind::Activate, 1, 1), 30).unwrap();
        c.observe(&cmd(CommandKind::Write, 0, 1), 60).unwrap();
        // Write data ends at 60 + 50 + 40 = 150; reads blocked until 180.
        let err = c.observe(&cmd(CommandKind::Read, 1, 1), 160).unwrap_err();
        assert_eq!(err.rule, "tWTR");
    }
}
