//! Physical-address decomposition under pluggable mapping policies.
//!
//! The paper's baseline controller uses an XOR-based address-to-bank mapping
//! (Frailong et al. `XOR-Schemes`; Zhang et al.'s permutation-based page
//! interleaving) to spread row-conflict streams across banks. That scheme is
//! now one point in a policy space: a [`MappingPolicy`] picks the bit order
//! and whether the XOR bank permutation is applied, and an [`AddressMapper`]
//! applies the policy to a concrete [`Geometry`], with `encode` and `decode`
//! exact inverses for every geometry.
//!
//! ```text
//!  RowInterleaved   line bits: [ row | channel | rank | bank | column ]
//!  LineInterleaved  line bits: [ row | column | rank | bank | channel ]
//!  effective bank-in-rank = bank_bits XOR (low row bits)   (when xor_permute)
//! ```
//!
//! `LineAddr::bank` is channel-global (see [`Geometry`]); the rank
//! coordinate is recovered with [`Geometry::rank_of`].

use crate::{Geometry, GeometryError};

/// A fully decoded DRAM location at cache-line granularity.
///
/// This is a passive record: public fields, no invariants beyond being in
/// range for the owning [`crate::DramConfig`]. `bank` is the
/// **channel-global** bank index; the owning rank is `bank / banks_per_rank`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct LineAddr {
    /// Channel index.
    pub channel: usize,
    /// Channel-global bank index (rank-major: rank `r` owns banks
    /// `r * banks_per_rank ..`).
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line) index within the row.
    pub col: u64,
}

/// How physical line addresses are sliced into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingPolicy {
    /// Row-interleaved (page-interleaved): consecutive lines walk the
    /// columns of one row, then banks, then ranks, then channels — the
    /// paper's baseline layout, maximizing row-buffer locality of streams.
    RowInterleaved {
        /// Apply the XOR bank permutation (`bank ^= row & (banks - 1)`).
        xor_permute: bool,
    },
    /// Line-interleaved: consecutive lines stripe across channels first,
    /// then banks and ranks, spreading even a sequential stream over the
    /// whole system at the cost of row locality.
    LineInterleaved {
        /// Apply the XOR bank permutation (`bank ^= row & (banks - 1)`).
        xor_permute: bool,
    },
}

impl MappingPolicy {
    /// The paper's baseline: row-interleaved with the XOR permutation on.
    #[must_use]
    pub fn baseline() -> MappingPolicy {
        MappingPolicy::RowInterleaved { xor_permute: true }
    }

    /// Whether the XOR bank permutation is applied.
    #[must_use]
    pub fn xor_permute(self) -> bool {
        match self {
            MappingPolicy::RowInterleaved { xor_permute }
            | MappingPolicy::LineInterleaved { xor_permute } => xor_permute,
        }
    }

    /// Returns the policy with the XOR permutation forced to `on`.
    #[must_use]
    pub fn with_xor(self, on: bool) -> MappingPolicy {
        match self {
            MappingPolicy::RowInterleaved { .. } => {
                MappingPolicy::RowInterleaved { xor_permute: on }
            }
            MappingPolicy::LineInterleaved { .. } => {
                MappingPolicy::LineInterleaved { xor_permute: on }
            }
        }
    }

    /// Short CLI / label name: `row` or `line`, with `-noxor` appended when
    /// the permutation is off.
    #[must_use]
    pub fn label(self) -> String {
        let (base, xor) = match self {
            MappingPolicy::RowInterleaved { xor_permute } => ("row", xor_permute),
            MappingPolicy::LineInterleaved { xor_permute } => ("line", xor_permute),
        };
        if xor {
            base.to_string()
        } else {
            format!("{base}-noxor")
        }
    }

    /// Parses a `--mapping` argument (`row` or `line`); the XOR permutation
    /// defaults to on (toggle with [`MappingPolicy::with_xor`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<MappingPolicy> {
        match s {
            "row" => Some(MappingPolicy::RowInterleaved { xor_permute: true }),
            "line" => Some(MappingPolicy::LineInterleaved { xor_permute: true }),
            _ => None,
        }
    }
}

impl Default for MappingPolicy {
    fn default() -> Self {
        MappingPolicy::baseline()
    }
}

/// Encodes and decodes physical line addresses for a [`Geometry`] under a
/// [`MappingPolicy`]. `decode` and `encode` are exact inverses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressMapper {
    geometry: Geometry,
    policy: MappingPolicy,
}

impl AddressMapper {
    /// Creates a mapper for `geometry` under `policy`.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if any dimension is zero or not a power
    /// of two (hardware address slicing requires power-of-two field widths).
    pub fn new(geometry: Geometry, policy: MappingPolicy) -> Result<Self, GeometryError> {
        geometry.validate()?;
        Ok(AddressMapper { geometry, policy })
    }

    /// The canonical single-rank mapper (row-interleaved, XOR on) used by
    /// workload stream generators: streams always *encode* through this
    /// fixed layout, and the system under test *decodes* with its own
    /// policy, so sweeping the mapping scrambles bank placement without
    /// changing the stream itself.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for non-power-of-two dimensions.
    pub fn canonical(
        channels: usize,
        banks_per_channel: usize,
        cols_per_row: u64,
    ) -> Result<Self, GeometryError> {
        AddressMapper::new(
            Geometry {
                channels,
                ranks_per_channel: 1,
                banks_per_rank: banks_per_channel,
                rows_per_bank: 16 * 1024,
                cols_per_row,
            },
            MappingPolicy::baseline(),
        )
    }

    /// The geometry this mapper slices addresses for.
    #[must_use]
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The active mapping policy.
    #[must_use]
    pub fn policy(&self) -> MappingPolicy {
        self.policy
    }

    fn permute(&self, bank_in_rank: usize, row: u64) -> usize {
        if self.policy.xor_permute() {
            bank_in_rank ^ (row as usize & (self.geometry.banks_per_rank - 1))
        } else {
            bank_in_rank
        }
    }

    /// Decodes a physical line address into channel / (global) bank / row /
    /// column under the active policy. The row occupies the topmost bits,
    /// so every `u64` line address decodes (rows beyond `rows_per_bank`
    /// alias higher rows; capacity is a config concern, not a mapper one).
    #[must_use]
    pub fn decode(&self, line: u64) -> LineAddr {
        let g = &self.geometry;
        let (channel, rank, bank_raw, row, col) = match self.policy {
            MappingPolicy::RowInterleaved { .. } => {
                let col = line % g.cols_per_row;
                let rest = line / g.cols_per_row;
                let bank_raw = (rest as usize) % g.banks_per_rank;
                let rest = rest / g.banks_per_rank as u64;
                let rank = (rest as usize) % g.ranks_per_channel;
                let rest = rest / g.ranks_per_channel as u64;
                let channel = (rest as usize) % g.channels;
                let row = rest / g.channels as u64;
                (channel, rank, bank_raw, row, col)
            }
            MappingPolicy::LineInterleaved { .. } => {
                let channel = (line as usize) % g.channels;
                let rest = line / g.channels as u64;
                let bank_raw = (rest as usize) % g.banks_per_rank;
                let rest = rest / g.banks_per_rank as u64;
                let rank = (rest as usize) % g.ranks_per_channel;
                let rest = rest / g.ranks_per_channel as u64;
                let col = rest % g.cols_per_row;
                let row = rest / g.cols_per_row;
                (channel, rank, bank_raw, row, col)
            }
        };
        let bank = rank * g.banks_per_rank + self.permute(bank_raw, row);
        LineAddr { channel, bank, row, col }
    }

    /// Encodes a decoded location back into a physical line address
    /// (the exact inverse of [`AddressMapper::decode`]).
    #[must_use]
    pub fn encode(&self, addr: LineAddr) -> u64 {
        let g = &self.geometry;
        let rank = g.rank_of(addr.bank) as u64;
        let bank_raw = self.permute(g.bank_in_rank(addr.bank), addr.row) as u64;
        match self.policy {
            MappingPolicy::RowInterleaved { .. } => {
                let mut line = addr.row;
                line = line * g.channels as u64 + addr.channel as u64;
                line = line * g.ranks_per_channel as u64 + rank;
                line = line * g.banks_per_rank as u64 + bank_raw;
                line * g.cols_per_row + addr.col
            }
            MappingPolicy::LineInterleaved { .. } => {
                let mut line = addr.row;
                line = line * g.cols_per_row + addr.col;
                line = line * g.ranks_per_channel as u64 + rank;
                line = line * g.banks_per_rank as u64 + bank_raw;
                line * g.channels as u64 + addr.channel as u64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom(channels: usize, ranks: usize, banks: usize) -> Geometry {
        Geometry {
            channels,
            ranks_per_channel: ranks,
            banks_per_rank: banks,
            rows_per_bank: 1024,
            cols_per_row: 32,
        }
    }

    /// Every (policy × xor) pair over channels × ranks × banks in powers of
    /// two must have `encode ∘ decode = id` — the exhaustive-loop half of
    /// the satellite requirement (proptest covers random deep lines below).
    #[test]
    fn every_policy_round_trips_across_power_of_two_geometries() {
        for &channels in &[1usize, 2, 4] {
            for &ranks in &[1usize, 2, 4] {
                for &banks in &[1usize, 2, 8, 16] {
                    for &xor in &[false, true] {
                        for policy in [
                            MappingPolicy::RowInterleaved { xor_permute: xor },
                            MappingPolicy::LineInterleaved { xor_permute: xor },
                        ] {
                            let m =
                                AddressMapper::new(geom(channels, ranks, banks), policy).unwrap();
                            for line in (0..200_000u64).step_by(83) {
                                let a = m.decode(line);
                                assert!(a.channel < channels);
                                assert!(a.bank < ranks * banks, "{policy:?} {a:?}");
                                assert_eq!(
                                    m.encode(a),
                                    line,
                                    "{policy:?} c{channels} r{ranks} b{banks} line {line}: {a:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn consecutive_lines_share_a_row_when_row_interleaved() {
        let m = AddressMapper::canonical(1, 8, 32).unwrap();
        let a = m.decode(0);
        let b = m.decode(1);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn consecutive_lines_stripe_channels_when_line_interleaved() {
        let m =
            AddressMapper::new(geom(4, 1, 8), MappingPolicy::LineInterleaved { xor_permute: true })
                .unwrap();
        let addrs: Vec<LineAddr> = (0..4).map(|l| m.decode(l)).collect();
        for (i, a) in addrs.iter().enumerate() {
            assert_eq!(a.channel, i, "line {i} lands on channel {i}");
        }
    }

    #[test]
    fn xor_permutes_banks_across_rows() {
        let m = AddressMapper::canonical(1, 8, 32).unwrap();
        // Same raw-bank slice, different rows → different effective banks.
        let a = m.decode(0);
        let line_next_row = 32 * 8; // one full bank sweep → row 1, raw bank 0
        let b = m.decode(line_next_row);
        assert_eq!(b.row, 1);
        assert_ne!(a.bank, b.bank, "XOR permutation should move row 1 to a different bank");
    }

    #[test]
    fn disabling_xor_keeps_raw_bank_order() {
        let m =
            AddressMapper::new(geom(1, 1, 8), MappingPolicy::RowInterleaved { xor_permute: false })
                .unwrap();
        let a = m.decode(0);
        let b = m.decode(32 * 8); // row 1, raw bank 0
        assert_eq!(b.row, 1);
        assert_eq!(a.bank, b.bank, "without XOR, row 1 raw bank 0 stays bank 0");
    }

    #[test]
    fn multi_rank_decode_assigns_rank_major_banks() {
        let g = geom(1, 2, 8);
        let m =
            AddressMapper::new(g, MappingPolicy::RowInterleaved { xor_permute: false }).unwrap();
        // After a full sweep of rank 0's banks (8 banks × 32 cols), the next
        // line lands in rank 1 — i.e. global bank 8.
        let a = m.decode(0);
        let b = m.decode(32 * 8);
        assert_eq!(g.rank_of(a.bank), 0);
        assert_eq!(g.rank_of(b.bank), 1);
        assert_eq!(b.bank, 8);
        assert_eq!(b.row, 0, "still row 0 — ranks interleave below the row bits");
    }

    #[test]
    fn ranks_one_row_interleaved_matches_the_legacy_layout() {
        // The baseline-identity anchor: with one rank and XOR on, the new
        // mapper must reproduce the retired hard-coded decode exactly.
        let m = AddressMapper::canonical(2, 8, 32).unwrap();
        for line in (0..100_000u64).step_by(97) {
            let col = line % 32;
            let rest = line / 32;
            let bank_raw = (rest as usize) % 8;
            let rest = rest / 8;
            let channel = (rest as usize) % 2;
            let row = rest / 2;
            let bank = bank_raw ^ (row as usize & 7);
            assert_eq!(m.decode(line), LineAddr { channel, bank, row, col });
        }
    }

    #[test]
    fn non_power_of_two_banks_rejected_with_typed_error() {
        let err = AddressMapper::canonical(1, 3, 32).unwrap_err();
        assert_eq!(err, GeometryError::NotPowerOfTwo { field: "banks_per_rank", value: 3 });
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn any_policy() -> impl Strategy<Value = MappingPolicy> {
        (any::<bool>(), any::<bool>()).prop_map(|(line, xor)| {
            if line {
                MappingPolicy::LineInterleaved { xor_permute: xor }
            } else {
                MappingPolicy::RowInterleaved { xor_permute: xor }
            }
        })
    }

    proptest! {
        #[test]
        fn round_trip_any_line_any_geometry(
            line in 0u64..1_000_000_000,
            chan_pow in 0usize..3,
            rank_pow in 0usize..3,
            bank_pow in 0usize..5,
            policy in any_policy(),
        ) {
            let g = Geometry {
                channels: 1 << chan_pow,
                ranks_per_channel: 1 << rank_pow,
                banks_per_rank: 1 << bank_pow,
                rows_per_bank: 16 * 1024,
                cols_per_row: 32,
            };
            let m = AddressMapper::new(g, policy).unwrap();
            prop_assert_eq!(m.encode(m.decode(line)), line);
        }

        #[test]
        fn decode_in_range(line in 0u64..1_000_000_000, policy in any_policy()) {
            let g = Geometry {
                channels: 4,
                ranks_per_channel: 2,
                banks_per_rank: 8,
                rows_per_bank: 16 * 1024,
                cols_per_row: 32,
            };
            let m = AddressMapper::new(g, policy).unwrap();
            let a = m.decode(line);
            prop_assert!(a.channel < 4);
            prop_assert!(a.bank < 16);
            prop_assert!(a.col < 32);
        }
    }
}

impl parbs_snap::Snap for LineAddr {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.usize(self.channel);
        w.usize(self.bank);
        w.u64(self.row);
        w.u64(self.col);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(LineAddr { channel: r.usize()?, bank: r.usize()?, row: r.u64()?, col: r.u64()? })
    }
}

impl parbs_snap::Snap for MappingPolicy {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        let (tag, xor) = match *self {
            MappingPolicy::RowInterleaved { xor_permute } => (0u8, xor_permute),
            MappingPolicy::LineInterleaved { xor_permute } => (1u8, xor_permute),
        };
        w.u8(tag);
        w.bool(xor);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        let tag = r.u8()?;
        let xor_permute = r.bool()?;
        match tag {
            0 => Ok(MappingPolicy::RowInterleaved { xor_permute }),
            1 => Ok(MappingPolicy::LineInterleaved { xor_permute }),
            t => Err(parbs_snap::SnapError::BadTag { what: "mapping policy", value: u64::from(t) }),
        }
    }
}
