//! Physical-address decomposition with XOR-based bank permutation.
//!
//! The paper's baseline controller uses an XOR-based address-to-bank mapping
//! (Frailong et al. `XOR-Schemes`; Zhang et al.'s permutation-based page
//! interleaving) to spread row-conflict streams across banks. We map a
//! physical **line address** (cache-line granularity, 64 B lines) as
//!
//! ```text
//!  line address bits:  [ row | channel | bank | column ]
//!  effective bank   =  bank_bits XOR (low row bits)
//! ```

/// A fully decoded DRAM location at cache-line granularity.
///
/// This is a passive record: public fields, no invariants beyond being in
/// range for the owning [`crate::DramConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct LineAddr {
    /// Channel index.
    pub channel: usize,
    /// Bank index within the channel.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (line) index within the row.
    pub col: u64,
}

/// Encodes and decodes physical line addresses for a given geometry, applying
/// the XOR bank permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressMapper {
    channels: usize,
    banks: usize,
    cols_per_row: u64,
}

impl AddressMapper {
    /// Creates a mapper for `channels` × `banks` with `cols_per_row` lines
    /// per row.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or not a power of two (hardware
    /// address slicing requires power-of-two field widths).
    #[must_use]
    pub fn new(channels: usize, banks: usize, cols_per_row: u64) -> Self {
        assert!(channels.is_power_of_two(), "channels must be a power of two");
        assert!(banks.is_power_of_two(), "banks must be a power of two");
        assert!(cols_per_row.is_power_of_two(), "cols_per_row must be a power of two");
        AddressMapper { channels, banks, cols_per_row }
    }

    /// Decodes a physical line address into channel/bank/row/column, applying
    /// the XOR bank permutation (`bank ^= row & (banks - 1)`).
    #[must_use]
    pub fn decode(&self, line: u64) -> LineAddr {
        let col = line % self.cols_per_row;
        let rest = line / self.cols_per_row;
        let bank_raw = (rest as usize) % self.banks;
        let rest = rest / self.banks as u64;
        let channel = (rest as usize) % self.channels;
        let row = rest / self.channels as u64;
        let bank = bank_raw ^ (row as usize & (self.banks - 1));
        LineAddr { channel, bank, row, col }
    }

    /// Encodes a decoded location back into a physical line address
    /// (the inverse of [`AddressMapper::decode`]).
    #[must_use]
    pub fn encode(&self, addr: LineAddr) -> u64 {
        let bank_raw = addr.bank ^ (addr.row as usize & (self.banks - 1));
        let mut line = addr.row;
        line = line * self.channels as u64 + addr.channel as u64;
        line = line * self.banks as u64 + bank_raw as u64;
        line * self.cols_per_row + addr.col
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_encode_round_trip() {
        let m = AddressMapper::new(2, 8, 32);
        for line in (0..100_000u64).step_by(97) {
            let a = m.decode(line);
            assert_eq!(m.encode(a), line, "line {line} did not round-trip: {a:?}");
        }
    }

    #[test]
    fn consecutive_lines_share_a_row() {
        let m = AddressMapper::new(1, 8, 32);
        let a = m.decode(0);
        let b = m.decode(1);
        assert_eq!(a.row, b.row);
        assert_eq!(a.bank, b.bank);
        assert_eq!(b.col, a.col + 1);
    }

    #[test]
    fn xor_permutes_banks_across_rows() {
        let m = AddressMapper::new(1, 8, 32);
        // Same raw-bank slice, different rows → different effective banks.
        let a = m.decode(0);
        let line_next_row = 32 * 8; // one full bank sweep → row 1, raw bank 0
        let b = m.decode(line_next_row);
        assert_eq!(b.row, 1);
        assert_ne!(a.bank, b.bank, "XOR permutation should move row 1 to a different bank");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_banks_rejected() {
        let _ = AddressMapper::new(1, 3, 32);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn round_trip_any_line(line in 0u64..1_000_000_000, chan_pow in 0usize..3, bank_pow in 1usize..5) {
            let m = AddressMapper::new(1 << chan_pow, 1 << bank_pow, 32);
            prop_assert_eq!(m.encode(m.decode(line)), line);
        }

        #[test]
        fn decode_in_range(line in 0u64..1_000_000_000) {
            let m = AddressMapper::new(4, 8, 32);
            let a = m.decode(line);
            prop_assert!(a.channel < 4);
            prop_assert!(a.bank < 8);
            prop_assert!(a.col < 32);
        }
    }
}
