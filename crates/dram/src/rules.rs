//! The declarative DDR2 timing-rule table.
//!
//! Every pairwise timing constraint the model enforces — the Table 2
//! parameters tRCD, tRP, tRAS, tRC, tRRD, tFAW, tWR, tRTP, tWTR, the
//! tCL/tCWL data-bus occupancy, tRTRS and tRFC — is stated here **once**,
//! as data: a [`TimingRule`] names the constraint, its scope (same bank /
//! same rank / cross rank / whole channel), the command-stream event it
//! measures from, and the minimum separation as a sum of named
//! [`TimingParam`]s. The imperative issue gating in [`crate::Channel`] and
//! the post-hoc [`crate::ProtocolChecker`] are both validated against this
//! table: the checker's timing validation is *evaluated from it* (via
//! [`RuleEngine`]), and `parbs-analyze`'s differential bounded model checker
//! cross-checks `Channel::can_issue`, an independent earliest-time oracle
//! built from the same table, and the checker on exhaustively enumerated
//! command sequences.
//!
//! A rule reads: *command `to` may not reach its `to_time` anchor earlier
//! than `min_sep` cycles after the `nth`-most-recent `from` event's
//! `from_time` anchor within `scope`*. Two anchor refinements make every
//! DDR2 constraint fit this one shape:
//!
//! * [`FromTime::DataEnd`] measures from the end of a column command's data
//!   transfer (`issue + tCL/tCWL + tBURST`) rather than its issue cycle —
//!   this expresses tWR and tWTR, which the standard defines from the last
//!   data beat;
//! * [`ToTime::DataStart`] constrains the candidate's *data* start
//!   (`issue + tCL/tCWL`) rather than its issue cycle — this expresses
//!   data-bus exclusivity and the tRTRS rank-switch gap;
//! * `nth = 4` on an activate-to-activate rule expresses the four-activate
//!   window: the fifth activate is constrained against the fourth-most-recent
//!   one, which is exactly the sliding-window formulation of tFAW.
//!
//! Bank-state legality (no `ACT` on an open bank, column row match, no
//! `PRE` on a closed bank) is not a timing rule; it is a property of the
//! bank state machine and is checked separately by both the checker and the
//! model-checking oracle.
//!
//! Rules come in two polarities ([`RuleKind`]): ordinary min-separation
//! rules gate command issue, while *deadline* rules (tREFI) put a ceiling
//! on how long a required command may stay absent. Deadline rules are
//! invisible to the issue path and are enforced by `parbs-analyze`'s
//! refresh model checker instead.

use crate::{CommandKind, TimingParams, DRAM_CYCLE};

/// A named operand of a rule's minimum-separation expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingParam {
    /// Activate → column delay (`t_rcd`).
    TRcd,
    /// CAS latency (`t_cl`).
    TCl,
    /// CAS write latency (`t_cwl`).
    TCwl,
    /// Precharge → activate (`t_rp`).
    TRp,
    /// Activate → precharge minimum (`t_ras`).
    TRas,
    /// Activate → activate, same bank (`t_rc`).
    TRc,
    /// Data-bus occupancy of one transfer (`t_burst`).
    TBurst,
    /// Column → column command gap (`t_ccd`).
    TCcd,
    /// Activate → activate, same rank (`t_rrd`).
    TRrd,
    /// Write recovery (`t_wr`).
    TWr,
    /// Read → precharge (`t_rtp`).
    TRtp,
    /// Write-to-read turnaround (`t_wtr`).
    TWtr,
    /// Four-activate window (`t_faw`).
    TFaw,
    /// Refresh cycle time (`t_rfc`).
    TRfc,
    /// Rank-to-rank data-bus switch gap (`t_rtrs`).
    TRtrs,
    /// Average refresh interval (`t_refi`) — a deadline, not a gap.
    TRefi,
    /// One command-bus slot ([`DRAM_CYCLE`] processor cycles).
    DramCycle,
}

impl TimingParam {
    /// The parameter's value in processor cycles under `t`.
    #[must_use]
    pub fn value(self, t: &TimingParams) -> u64 {
        match self {
            TimingParam::TRcd => t.t_rcd,
            TimingParam::TCl => t.t_cl,
            TimingParam::TCwl => t.t_cwl,
            TimingParam::TRp => t.t_rp,
            TimingParam::TRas => t.t_ras,
            TimingParam::TRc => t.t_rc,
            TimingParam::TBurst => t.t_burst,
            TimingParam::TCcd => t.t_ccd,
            TimingParam::TRrd => t.t_rrd,
            TimingParam::TWr => t.t_wr,
            TimingParam::TRtp => t.t_rtp,
            TimingParam::TWtr => t.t_wtr,
            TimingParam::TFaw => t.t_faw,
            TimingParam::TRfc => t.t_rfc,
            TimingParam::TRtrs => t.t_rtrs,
            TimingParam::TRefi => t.t_refi,
            TimingParam::DramCycle => DRAM_CYCLE,
        }
    }
}

/// Which commands share the state a rule constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleScope {
    /// The from-event and the candidate target the same bank.
    SameBank,
    /// The from-event and the candidate target the same rank.
    SameRank,
    /// The from-event and the candidate target *different* ranks of the
    /// same channel (bus-turnaround rules).
    CrossRank,
    /// Channel-wide: the shared command and data buses.
    Channel,
}

/// The class of past command-stream events a rule measures from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// An `ACT` issue.
    Act,
    /// A `RD` issue (with its data interval).
    Rd,
    /// A `WR` issue (with its data interval).
    Wr,
    /// The most recent column command of either kind (its recorded data end
    /// folds the maximum over all previous transfers — the data bus is a
    /// single serialized resource).
    Col,
    /// A `PRE` issue.
    Pre,
    /// A `REF` issue.
    Ref,
    /// Any command issue (command-bus rules).
    Any,
}

/// The class of candidate commands a rule constrains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmdClass {
    /// `ACT`.
    Act,
    /// `RD`.
    Rd,
    /// `WR`.
    Wr,
    /// `RD` or `WR`.
    Col,
    /// `PRE`.
    Pre,
    /// `REF`.
    Ref,
    /// Every command.
    Any,
}

impl CmdClass {
    /// True if `kind` belongs to this class.
    #[must_use]
    pub fn matches(self, kind: CommandKind) -> bool {
        match self {
            CmdClass::Act => kind == CommandKind::Activate,
            CmdClass::Rd => kind == CommandKind::Read,
            CmdClass::Wr => kind == CommandKind::Write,
            CmdClass::Col => kind.is_column(),
            CmdClass::Pre => kind == CommandKind::Precharge,
            CmdClass::Ref => kind == CommandKind::Refresh,
            CmdClass::Any => true,
        }
    }
}

/// Which timestamp of the from-event anchors the separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FromTime {
    /// The event's issue cycle.
    Issue,
    /// The end of the event's data transfer (column events only).
    DataEnd,
}

/// Which timestamp of the candidate command must respect the separation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToTime {
    /// The candidate's issue cycle.
    Issue,
    /// The start of the candidate's data transfer
    /// (`issue + tCL` for reads, `issue + tCWL` for writes).
    DataStart,
}

/// Whether a rule's separation is a floor or a ceiling.
///
/// Min-separation rules gate command *issue*: a candidate too close to its
/// anchor event is illegal and the controller must wait. Deadline rules are
/// the opposite polarity — they demand that the next `to`-event *happen* no
/// later than `min_sep` (read: *max_sep*) cycles after the anchor — so no
/// candidate command can ever violate one by issuing. They constrain the
/// **absence** of commands, which only a liveness check can observe:
/// [`RuleEngine::first_violation`] skips them, and `parbs-analyze`'s
/// refresh model checker (`check-timing --refresh`) enforces them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleKind {
    /// `to` may not come **sooner** than `min_sep` after the anchor.
    MinSeparation,
    /// `to` must come **no later** than `min_sep` after the anchor (plus
    /// the controller's bounded scheduling slack).
    Deadline,
}

/// One declarative timing constraint; see the module docs for the reading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingRule {
    /// Stable human-readable rule id; [`crate::ProtocolViolation::rule`]
    /// reports exactly these strings.
    pub id: &'static str,
    /// Floor ([`RuleKind::MinSeparation`]) or ceiling
    /// ([`RuleKind::Deadline`]) semantics for `min_sep`.
    pub kind: RuleKind,
    /// Which commands share the constrained state.
    pub scope: RuleScope,
    /// The event class measured from.
    pub from: EventClass,
    /// The from-event anchor.
    pub from_time: FromTime,
    /// Which past event of the class: 1 = most recent, 4 = fourth-most-
    /// recent (the tFAW window).
    pub nth: u32,
    /// The candidate-command class constrained.
    pub to: CmdClass,
    /// The candidate anchor.
    pub to_time: ToTime,
    /// Minimum separation: the sum of these parameters, in cycles.
    pub min_sep: &'static [TimingParam],
}

impl TimingRule {
    /// The rule's minimum separation in processor cycles under `t`.
    #[must_use]
    pub fn min_sep_cycles(&self, t: &TimingParams) -> u64 {
        self.min_sep.iter().map(|p| p.value(t)).sum()
    }
}

/// The complete DDR2 timing-rule table, in evaluation order (the first
/// violated rule is the one reported). The ids match the historical
/// [`crate::ProtocolChecker`] rule names.
pub const TIMING_RULES: &[TimingRule] = &[
    // The command bus carries one command per DRAM cycle.
    TimingRule {
        id: "one command per DRAM cycle",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::Channel,
        from: EventClass::Any,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Any,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::DramCycle],
    },
    // A refreshing rank is unavailable for tRFC — to *every* command,
    // including another refresh.
    TimingRule {
        id: "tRFC",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::SameRank,
        from: EventClass::Ref,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Any,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TRfc],
    },
    // Precharge → activate, same bank.
    TimingRule {
        id: "tRP",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::SameBank,
        from: EventClass::Pre,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Act,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TRp],
    },
    // Activate → activate, same bank (row cycle).
    TimingRule {
        id: "tRC",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::SameBank,
        from: EventClass::Act,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Act,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TRc],
    },
    // Activate → activate, different banks of the same rank.
    TimingRule {
        id: "tRRD",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::SameRank,
        from: EventClass::Act,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Act,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TRrd],
    },
    // Four-activate window: the fifth activate waits for the fourth-most-
    // recent one to leave the tFAW window.
    TimingRule {
        id: "tFAW",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::SameRank,
        from: EventClass::Act,
        from_time: FromTime::Issue,
        nth: 4,
        to: CmdClass::Act,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TFaw],
    },
    // Activate → column, same bank.
    TimingRule {
        id: "tRCD",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::SameBank,
        from: EventClass::Act,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Col,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TRcd],
    },
    // Column → column command gap on the shared command/data path.
    TimingRule {
        id: "tCCD",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::Channel,
        from: EventClass::Col,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Col,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TCcd],
    },
    // Write turnaround: a column command waits tWTR after the last write's
    // final data beat. DDR2 defines tWTR as write→read only; the model
    // applies it conservatively to *all* column commands channel-wide, and
    // this rule states the modeled semantics so gating, checker and the
    // analyze oracle agree by construction.
    TimingRule {
        id: "tWTR",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::Channel,
        from: EventClass::Wr,
        from_time: FromTime::DataEnd,
        nth: 1,
        to: CmdClass::Col,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TWtr],
    },
    // Data-bus exclusivity: a transfer may not start before the previous
    // one ends.
    TimingRule {
        id: "data bus conflict",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::Channel,
        from: EventClass::Col,
        from_time: FromTime::DataEnd,
        nth: 1,
        to: CmdClass::Col,
        to_time: ToTime::DataStart,
        min_sep: &[],
    },
    // Rank-to-rank switch: a transfer from a different rank than the
    // previous one pays tRTRS on top of bus exclusivity.
    TimingRule {
        id: "tRTRS",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::CrossRank,
        from: EventClass::Col,
        from_time: FromTime::DataEnd,
        nth: 1,
        to: CmdClass::Col,
        to_time: ToTime::DataStart,
        min_sep: &[TimingParam::TRtrs],
    },
    // Activate → precharge, same bank (row-access minimum).
    TimingRule {
        id: "tRAS",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::SameBank,
        from: EventClass::Act,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Pre,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TRas],
    },
    // Read → precharge, same bank.
    TimingRule {
        id: "tRTP",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::SameBank,
        from: EventClass::Rd,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Pre,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TRtp],
    },
    // Write recovery: precharge waits tWR after the write's last data beat.
    TimingRule {
        id: "tWR",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::SameBank,
        from: EventClass::Wr,
        from_time: FromTime::DataEnd,
        nth: 1,
        to: CmdClass::Pre,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TWr],
    },
    // Refresh needs a quiet data bus.
    TimingRule {
        id: "refresh during data transfer",
        kind: RuleKind::MinSeparation,
        scope: RuleScope::Channel,
        from: EventClass::Col,
        from_time: FromTime::DataEnd,
        nth: 1,
        to: CmdClass::Ref,
        to_time: ToTime::Issue,
        min_sep: &[],
    },
    // Retention deadline: each rank must be refreshed again within tREFI
    // of its previous refresh (at boot: within tREFI of cycle 0). This is
    // a Deadline rule — it bounds how *late* the next REF may be, so it
    // gates no candidate command and is enforced by the refresh model
    // checker, not the issue path.
    TimingRule {
        id: "tREFI",
        kind: RuleKind::Deadline,
        scope: RuleScope::SameRank,
        from: EventClass::Ref,
        from_time: FromTime::Issue,
        nth: 1,
        to: CmdClass::Ref,
        to_time: ToTime::Issue,
        min_sep: &[TimingParam::TRefi],
    },
];

/// The data-transfer interval of a column command issued at `at`:
/// `[at + tCL/tCWL, at + tCL/tCWL + tBURST)`. `None` for non-column kinds.
#[must_use]
pub fn data_interval(kind: CommandKind, at: u64, t: &TimingParams) -> Option<(u64, u64)> {
    let cas = match kind {
        CommandKind::Read => t.t_cl,
        CommandKind::Write => t.t_cwl,
        _ => return None,
    };
    Some((at + cas, at + cas + t.t_burst))
}

/// A recorded command-stream event: issue cycle plus, for column commands,
/// the end of the data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventTimes {
    at: u64,
    data_end: u64,
}

/// Per-bank event history (most recent event of each class).
#[derive(Debug, Clone, Copy, Default)]
struct BankEvents {
    act: Option<u64>,
    rd: Option<u64>,
    wr: Option<EventTimes>,
    pre: Option<u64>,
}

/// Evaluates the [`TIMING_RULES`] table over an observed command stream.
///
/// The engine records the event history each rule can reference (per bank,
/// per rank, channel-wide) and answers, for a candidate command at a
/// candidate cycle, which rule — if any — it would violate. It checks
/// *timing* only; bank-state legality and index validity are the caller's
/// concern ([`crate::ProtocolChecker`] layers them on top).
#[derive(Debug, Clone)]
pub struct RuleEngine {
    timing: TimingParams,
    banks_per_rank: usize,
    banks: Vec<BankEvents>,
    /// Up to the four most recent activate issues per rank, newest last.
    rank_acts: Vec<Vec<u64>>,
    rank_ref: Vec<Option<u64>>,
    last_cmd: Option<u64>,
    last_col: Option<EventTimes>,
    /// Rank that drove the most recent data transfer.
    last_col_rank: Option<usize>,
    last_wr: Option<EventTimes>,
}

impl RuleEngine {
    /// Creates an engine for `ranks` × `banks_per_rank` banks.
    #[must_use]
    pub fn new(ranks: usize, banks_per_rank: usize, timing: TimingParams) -> Self {
        RuleEngine {
            timing,
            banks_per_rank,
            banks: vec![BankEvents::default(); ranks * banks_per_rank],
            rank_acts: vec![Vec::with_capacity(4); ranks],
            rank_ref: vec![None; ranks],
            last_cmd: None,
            last_col: None,
            last_col_rank: None,
            last_wr: None,
        }
    }

    /// The timing parameters the engine evaluates rules under.
    #[must_use]
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    fn rank_of(&self, kind: CommandKind, rank: usize, bank: usize) -> usize {
        if kind == CommandKind::Refresh {
            rank
        } else {
            bank / self.banks_per_rank
        }
    }

    /// The anchor time of the `nth`-most-recent event of `rule.from` within
    /// `rule.scope` relative to the candidate, or `None` if no such event.
    fn anchor_of(&self, rule: &TimingRule, rank: usize, bank: usize) -> Option<u64> {
        let pick = |at: u64, data_end: u64| match rule.from_time {
            FromTime::Issue => at,
            FromTime::DataEnd => data_end,
        };
        match rule.scope {
            RuleScope::SameBank => {
                let b = self.banks.get(bank)?;
                match rule.from {
                    EventClass::Act => b.act,
                    EventClass::Rd => b.rd,
                    EventClass::Wr => b.wr.map(|e| pick(e.at, e.data_end)),
                    EventClass::Pre => b.pre,
                    _ => None,
                }
            }
            RuleScope::SameRank => match rule.from {
                EventClass::Act => {
                    let acts = self.rank_acts.get(rank)?;
                    acts.len().checked_sub(rule.nth as usize).map(|i| acts[i])
                }
                EventClass::Ref => *self.rank_ref.get(rank)?,
                _ => None,
            },
            RuleScope::CrossRank => match rule.from {
                EventClass::Col if self.last_col_rank.is_some_and(|r| r != rank) => {
                    self.last_col.map(|e| pick(e.at, e.data_end))
                }
                _ => None,
            },
            RuleScope::Channel => match rule.from {
                EventClass::Any => self.last_cmd,
                EventClass::Col => self.last_col.map(|e| pick(e.at, e.data_end)),
                EventClass::Wr => self.last_wr.map(|e| pick(e.at, e.data_end)),
                _ => None,
            },
        }
    }

    /// The first rule of [`TIMING_RULES`] that `kind` targeting
    /// (`rank`, `bank`) at cycle `at` would violate, if any.
    #[must_use]
    pub fn first_violation(
        &self,
        kind: CommandKind,
        rank: usize,
        bank: usize,
        at: u64,
    ) -> Option<&'static str> {
        let rank = self.rank_of(kind, rank, bank);
        for rule in TIMING_RULES {
            // Deadline rules bound the *absence* of a command; no candidate
            // issue can violate one (see [`RuleKind::Deadline`]).
            if rule.kind != RuleKind::MinSeparation {
                continue;
            }
            if !rule.to.matches(kind) {
                continue;
            }
            let Some(anchor) = self.anchor_of(rule, rank, bank) else { continue };
            let to_anchor = match rule.to_time {
                ToTime::Issue => at,
                ToTime::DataStart => match data_interval(kind, at, &self.timing) {
                    Some((start, _)) => start,
                    None => continue,
                },
            };
            if to_anchor < anchor + rule.min_sep_cycles(&self.timing) {
                return Some(rule.id);
            }
        }
        None
    }

    /// Records `kind` targeting (`rank`, `bank`) issued at `at`.
    pub fn record(&mut self, kind: CommandKind, rank: usize, bank: usize, at: u64) {
        let rank = self.rank_of(kind, rank, bank);
        self.last_cmd = Some(at);
        match kind {
            CommandKind::Activate => {
                self.banks[bank].act = Some(at);
                let acts = &mut self.rank_acts[rank];
                if acts.len() == 4 {
                    acts.remove(0);
                }
                acts.push(at);
            }
            CommandKind::Read | CommandKind::Write => {
                let (_, end) = data_interval(kind, at, &self.timing).expect("column command");
                // Fold the maximum data end so bus rules see the true
                // bus-free time even if transfer ends are not monotone.
                let folded = self.last_col.map_or(end, |e| e.data_end.max(end));
                self.last_col = Some(EventTimes { at, data_end: folded });
                self.last_col_rank = Some(rank);
                if kind == CommandKind::Write {
                    let e = EventTimes { at, data_end: end };
                    self.banks[bank].wr = Some(e);
                    self.last_wr = Some(e);
                } else {
                    self.banks[bank].rd = Some(at);
                }
            }
            CommandKind::Precharge => self.banks[bank].pre = Some(at),
            CommandKind::Refresh => self.rank_ref[rank] = Some(at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_rule_id_is_unique() {
        let mut ids: Vec<&str> = TIMING_RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), TIMING_RULES.len(), "duplicate rule id");
    }

    #[test]
    fn table_covers_every_ddr2_constraint() {
        // Each Table 2 parameter must appear in at least one rule, so a
        // dropped rule cannot silently decouple a parameter from checking.
        let used: Vec<TimingParam> =
            TIMING_RULES.iter().flat_map(|r| r.min_sep.iter().copied()).collect();
        for p in [
            TimingParam::TRcd,
            TimingParam::TRp,
            TimingParam::TRas,
            TimingParam::TRc,
            TimingParam::TRrd,
            TimingParam::TFaw,
            TimingParam::TWr,
            TimingParam::TRtp,
            TimingParam::TWtr,
            TimingParam::TCcd,
            TimingParam::TRfc,
            TimingParam::TRtrs,
            TimingParam::TRefi,
            TimingParam::DramCycle,
        ] {
            assert!(used.contains(&p), "no rule references {p:?}");
        }
        // tCL/tCWL/tBURST enter through the data-interval anchors.
        assert!(TIMING_RULES
            .iter()
            .any(|r| r.from_time == FromTime::DataEnd && r.to_time == ToTime::DataStart));
    }

    #[test]
    fn deadline_rules_never_gate_issue() {
        // tREFI is a ceiling on refresh *absence*; back-to-back refreshes
        // are gated by tRFC only, never by the deadline rule. A refresh at
        // t_rfc after the previous one must be legal even though it is far
        // inside the tREFI window.
        let t = TimingParams::ddr2_800();
        let mut e = RuleEngine::new(2, 8, t);
        e.record(CommandKind::Refresh, 0, 0, 0);
        assert!(t.t_rfc < t.t_refi);
        assert_eq!(e.first_violation(CommandKind::Refresh, 0, 0, t.t_rfc), None);
        // Exactly one deadline rule, and it covers tREFI.
        let deadlines: Vec<&TimingRule> =
            TIMING_RULES.iter().filter(|r| r.kind == RuleKind::Deadline).collect();
        assert_eq!(deadlines.len(), 1);
        assert_eq!(deadlines[0].id, "tREFI");
        assert_eq!(deadlines[0].min_sep_cycles(&t), t.t_refi);
    }

    #[test]
    fn rule_separation_sums_parameters() {
        let t = TimingParams::ddr2_800();
        let twr = TIMING_RULES.iter().find(|r| r.id == "tWR").unwrap();
        // tWR measures from the data end directly (anchored, not summed).
        assert_eq!(twr.min_sep_cycles(&t), t.t_wr);
        assert_eq!(twr.from_time, FromTime::DataEnd);
    }

    #[test]
    fn engine_enforces_faw_as_fourth_previous_activate() {
        let t = TimingParams::ddr2_800();
        let mut e = RuleEngine::new(1, 8, t);
        for (i, at) in (0..4u64).map(|i| (i, i * t.t_rrd)) {
            assert_eq!(e.first_violation(CommandKind::Activate, 0, i as usize, at), None);
            e.record(CommandKind::Activate, 0, i as usize, at);
        }
        let after = 4 * t.t_rrd;
        assert_eq!(e.first_violation(CommandKind::Activate, 0, 4, after), Some("tFAW"));
        assert_eq!(e.first_violation(CommandKind::Activate, 0, 4, t.t_faw), None);
    }

    #[test]
    fn engine_data_end_fold_is_monotone() {
        // A read's data can end later than a following write's; the folded
        // Col event must keep the max so bus rules match Channel's
        // `data_bus_free_at` semantics.
        let mut t = TimingParams::ddr2_800();
        t.t_cl = 100;
        t.t_cwl = 10;
        t.t_ccd = 10;
        t.t_wtr = 10;
        let mut e = RuleEngine::new(1, 8, t);
        e.record(CommandKind::Activate, 0, 0, 0);
        e.record(CommandKind::Activate, 0, 1, 30);
        e.record(CommandKind::Read, 0, 0, 60); // data [160, 200)
        e.record(CommandKind::Write, 0, 1, 80); // data [90, 130) — ends earlier
                                                // At 140 the write clears tWTR (130 + 10) and tCCD, but its data
                                                // would start at 150 < 200: still a bus conflict, even though the
                                                // most recent transfer ended at 130.
        assert_eq!(e.first_violation(CommandKind::Write, 0, 0, 140), Some("data bus conflict"));
        assert_eq!(e.first_violation(CommandKind::Write, 0, 0, 190), None);
    }
}
