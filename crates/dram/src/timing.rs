//! DRAM timing parameters, expressed in processor cycles (4 GHz).
//!
//! The defaults correspond to the paper's Table 2: Micron DDR2-800 with
//! `tCL = tRCD = tRP = 15 ns` and `BL/2 = 10 ns`, scaled by 4 cycles/ns.

/// Processor cycles per DRAM (command-clock) cycle: 4 GHz core vs. 400 MHz
/// DDR2-800 command clock.
pub const DRAM_CYCLE: u64 = 10;

/// DRAM timing constraints in processor cycles.
///
/// Fields are public because this is a passive parameter record; invariants
/// (e.g. `t_rc = t_ras + t_rp`) are the caller's responsibility and are
/// asserted by [`TimingParams::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Activate → read/write to the same bank (row-to-column delay).
    pub t_rcd: u64,
    /// Read command → first data beat (CAS latency).
    pub t_cl: u64,
    /// Write command → first data beat (CAS write latency).
    pub t_cwl: u64,
    /// Precharge → activate to the same bank.
    pub t_rp: u64,
    /// Activate → precharge to the same bank (row-access minimum).
    pub t_ras: u64,
    /// Activate → activate to the same bank (`t_ras + t_rp`).
    pub t_rc: u64,
    /// Data-bus occupancy of one 64-byte transfer (`BL/2`).
    pub t_burst: u64,
    /// Column command → column command on the same channel.
    pub t_ccd: u64,
    /// Activate → activate to *different* banks of the same rank.
    pub t_rrd: u64,
    /// End of write data → precharge of the written bank (write recovery).
    pub t_wr: u64,
    /// Read command → precharge of the read bank.
    pub t_rtp: u64,
    /// End of write data → next read command on the channel.
    pub t_wtr: u64,
    /// Fixed front-end latency added to every completed request, modeling the
    /// on-chip controller and interconnect between the L2 and the DRAM
    /// controller. Calibrated so an uncontended row-hit round trip is
    /// ≈ 160 cycles (40 ns) as in the paper's Table 2.
    pub front_latency: u64,
    /// Open-page grace: after a column access, the controller holds the row
    /// open for this long before allowing a precharge (speculative open-row
    /// policy). Not a device constraint — a controller policy knob.
    pub t_row_grace: u64,
    /// Four-activate window: at most four `ACT`s may issue to a rank within
    /// any window of this length (0 disables the constraint).
    pub t_faw: u64,
    /// Average refresh interval: the controller must issue one all-bank
    /// refresh every `t_refi` cycles (0 disables refresh).
    pub t_refi: u64,
    /// Refresh cycle time: the rank is unavailable for this long after a
    /// refresh begins.
    pub t_rfc: u64,
    /// Rank-to-rank switch time: extra gap on the shared data bus when
    /// consecutive data transfers come from *different* ranks of the same
    /// channel (bus turnaround / ODT settling). Irrelevant on single-rank
    /// channels.
    pub t_rtrs: u64,
}

impl TimingParams {
    /// DDR2-800 parameters from the paper's Table 2, in 4 GHz processor
    /// cycles (1 ns = 4 cycles).
    #[must_use]
    pub fn ddr2_800() -> Self {
        TimingParams {
            t_rcd: 60,
            t_cl: 60,
            t_cwl: 50,
            t_rp: 60,
            t_ras: 180,
            t_rc: 240,
            t_burst: 40,
            t_ccd: 20,
            t_rrd: 30,
            t_wr: 60,
            t_rtp: 30,
            t_wtr: 30,
            front_latency: 60,
            t_row_grace: 200,
            // DDR2-800 datasheet values: tFAW = 37.5 ns, tREFI = 7.8 us,
            // tRFC = 127.5 ns (1 Gb parts), in 4 GHz cycles.
            t_faw: 150,
            t_refi: 31_200,
            t_rfc: 510,
            // One DDR2 command clock (5 ns at DDR2-800 ≈ 2 beats) of bus
            // turnaround between ranks, in 4 GHz cycles.
            t_rtrs: 20,
        }
    }

    /// Checks internal consistency of the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated relationship
    /// (e.g. `t_rc < t_ras + t_rp`, or a zero burst length).
    pub fn validate(&self) -> Result<(), String> {
        if self.t_burst == 0 {
            return Err("t_burst must be positive".into());
        }
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "t_rc ({}) must be at least t_ras + t_rp ({})",
                self.t_rc,
                self.t_ras + self.t_rp
            ));
        }
        if self.t_ras < self.t_rcd {
            return Err(format!("t_ras ({}) must be at least t_rcd ({})", self.t_ras, self.t_rcd));
        }
        Ok(())
    }

    /// Latency of an uncontended **row-hit** read, from command issue to the
    /// last data beat (excluding [`TimingParams::front_latency`]).
    #[must_use]
    pub fn row_hit_latency(&self) -> u64 {
        self.t_cl + self.t_burst
    }

    /// Latency of an uncontended **row-closed** read (activate first).
    #[must_use]
    pub fn row_closed_latency(&self) -> u64 {
        self.t_rcd + self.row_hit_latency()
    }

    /// Latency of an uncontended **row-conflict** read (precharge, activate,
    /// then read).
    #[must_use]
    pub fn row_conflict_latency(&self) -> u64 {
        self.t_rp + self.row_closed_latency()
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        Self::ddr2_800()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr2_800_is_valid() {
        TimingParams::ddr2_800().validate().unwrap();
    }

    #[test]
    fn latency_ladder_matches_row_buffer_categories() {
        let t = TimingParams::ddr2_800();
        // hit < closed < conflict, spaced by tRCD and tRP.
        assert_eq!(t.row_hit_latency(), 100);
        assert_eq!(t.row_closed_latency(), 160);
        assert_eq!(t.row_conflict_latency(), 220);
    }

    #[test]
    fn round_trip_hit_is_about_160_cycles() {
        let t = TimingParams::ddr2_800();
        assert_eq!(t.row_hit_latency() + t.front_latency, 160);
    }

    #[test]
    fn validate_rejects_inconsistent_trc() {
        let mut t = TimingParams::ddr2_800();
        t.t_rc = 10;
        assert!(t.validate().is_err());
    }

    #[test]
    fn refresh_parameters_are_sane() {
        let t = TimingParams::ddr2_800();
        assert!(t.t_refi > 10 * t.t_rfc, "refresh overhead must be a small fraction");
        assert!(t.t_faw >= t.t_rrd, "tFAW cannot be tighter than tRRD");
    }

    #[test]
    fn validate_rejects_zero_burst() {
        let mut t = TimingParams::ddr2_800();
        t.t_burst = 0;
        assert!(t.validate().is_err());
    }
}
