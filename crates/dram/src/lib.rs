//! Cycle-level shared-DRAM substrate for memory-scheduler research.
//!
//! This crate models the DRAM system of Mutlu & Moscibroda,
//! *Parallelism-Aware Batch Scheduling* (ISCA 2008), Table 2: a DDR2-800
//! SDRAM channel with 8 banks, 2 KB row buffers, open-page policy, a
//! 128-entry read request buffer and a 64-entry write buffer, with reads
//! prioritized over writes. All times are **processor cycles** at 4 GHz;
//! one DRAM cycle is [`DRAM_CYCLE`] = 10 processor cycles and the
//! controller makes at most one command decision per DRAM cycle per channel.
//!
//! The shape of the DRAM system — channels, ranks per channel, banks per
//! rank, rows, columns — is an explicit [`Geometry`] value that flows from
//! [`DramConfig`] through the [`Channel`], [`Controller`], protocol checker
//! and [`AddressMapper`]; the address-bit layout is selected by a
//! [`MappingPolicy`]. Multi-rank channels model per-rank activate windows
//! (tRRD/tFAW), per-rank refresh (tRFC) and the rank-to-rank data-bus
//! switch penalty (tRTRS).
//!
//! The scheduling policy is pluggable through the [`MemoryScheduler`] trait:
//! per decision slot the controller sorts the queued read requests with the
//! scheduler's comparison function and issues the next required DRAM command
//! (precharge / activate / read) of the highest-priority request whose
//! command is *ready* — the "first-ready" discipline of FR-FCFS generalized
//! to arbitrary priority orders.
//!
//! A [`ProtocolChecker`] can observe every issued command and verify that no
//! DRAM timing constraint is ever violated; the property-based tests use it
//! to validate the controller under random schedulers and request streams.
//!
//! For observability, attach any [`parbs_obs::EventSink`] with
//! [`Controller::set_event_sink`]: the controller then emits the full
//! structured event stream (enqueues, batch formation/marking/ranking,
//! command issue with row hit/closed/conflict classification, completions,
//! write-drain windows, refreshes, bus samples). [`CommandTraceSink`]
//! rebuilds the legacy `(cycle, Command)` trace from that stream, and
//! [`render_timeline`] draws the ASCII service-order diagrams from it. With
//! no sink attached the instrumentation costs one branch per site.
//!
//! # Examples
//!
//! ```
//! use parbs_dram::{Controller, DramConfig, FcfsScheduler, LineAddr, Request, RequestKind, ThreadId};
//!
//! let config = DramConfig::default();
//! let mut ctrl = Controller::new(config.clone(), Box::new(FcfsScheduler::new()));
//! let addr = LineAddr { channel: 0, bank: 2, row: 7, col: 3 };
//! ctrl.try_enqueue(Request::new(0, ThreadId(0), addr, RequestKind::Read, 0)).unwrap();
//! let mut done = Vec::new();
//! for now in 0..10_000 {
//!     ctrl.tick(now, &mut done);
//! }
//! assert_eq!(done.len(), 1);
//! // Uncontended row-closed access: activate + read + burst + front-end.
//! assert!(done[0].finish >= 160);
//! ```

mod address;
mod bank;
mod channel;
mod checker;
mod command;
mod config;
mod contract;
mod controller;
mod geometry;
mod keys;
mod request;
mod rules;
mod scheduler;
mod stats;
mod thread_table;
mod timeline;
mod timing;
mod trace_sink;

pub use address::{AddressMapper, LineAddr, MappingPolicy};
pub use bank::{Bank, BankState};
pub use channel::Channel;
pub use checker::{ProtocolChecker, ProtocolViolation};
pub use command::{Command, CommandKind};
pub use config::DramConfig;
pub use contract::{LivenessContract, LivenessPolicy, StarvationClaim};
pub use controller::{Completion, Controller, EnqueueError};
pub use geometry::{Geometry, GeometryError};
pub use keys::{f64_total_order_bits, FieldSemantic, KeyField, KeyLayout};
pub use request::{Request, RequestId, RequestKind, ThreadId};
pub use rules::{
    data_interval, CmdClass, EventClass, FromTime, RuleEngine, RuleKind, RuleScope, TimingParam,
    TimingRule, ToTime, TIMING_RULES,
};
pub use scheduler::{FcfsScheduler, MemoryScheduler, SchedView};
pub use stats::{BlpTracker, ControllerStats};
pub use thread_table::ThreadTable;
pub use timeline::render_timeline;
pub use timing::{TimingParams, DRAM_CYCLE};
pub use trace_sink::{obs_cmd_kind, CommandTraceSink};
