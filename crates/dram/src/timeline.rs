//! ASCII rendering of command traces: a per-bank timeline in the style of
//! the paper's service-order diagrams (Figs. 1-3).
//!
//! Feed it the trace recorded by [`crate::Controller::set_tracing`]; each
//! bank becomes one row, each DRAM-cycle column one character:
//! `A` activate, `R` read, `W` write, `P` precharge, `F` refresh (spanning
//! all banks), `.` idle.

use crate::{Command, CommandKind, DRAM_CYCLE};

/// Renders `trace` between `from` and `to` (processor cycles) as one text
/// row per bank. Long windows are clipped to `max_cols` DRAM cycles (an
/// ellipsis marks the cut).
///
/// # Examples
///
/// ```
/// use parbs_dram::{render_timeline, Command, CommandKind, RequestId};
/// let trace = vec![
///     (0, Command { kind: CommandKind::Activate, bank: 0, row: 1, col: 0, request: RequestId(0) }),
///     (60, Command { kind: CommandKind::Read, bank: 0, row: 1, col: 0, request: RequestId(0) }),
/// ];
/// let art = parbs_dram::render_timeline(&trace, 2, 0, 100, 80);
/// assert!(art.lines().count() >= 2);
/// assert!(art.contains('A') && art.contains('R'));
/// ```
#[must_use]
pub fn render_timeline(
    trace: &[(u64, Command)],
    banks: usize,
    from: u64,
    to: u64,
    max_cols: usize,
) -> String {
    let to = to.max(from + DRAM_CYCLE);
    let cols = (((to - from) / DRAM_CYCLE) as usize).min(max_cols.max(1));
    let clipped = ((to - from) / DRAM_CYCLE) as usize > cols;
    let mut rows = vec![vec![b'.'; cols]; banks];
    for &(at, cmd) in trace {
        if at < from || at >= from + (cols as u64) * DRAM_CYCLE {
            continue;
        }
        let col = ((at - from) / DRAM_CYCLE) as usize;
        let ch = match cmd.kind {
            CommandKind::Activate => b'A',
            CommandKind::Read => b'R',
            CommandKind::Write => b'W',
            CommandKind::Precharge => b'P',
            CommandKind::Refresh => b'F',
        };
        if cmd.kind == CommandKind::Refresh {
            for row in &mut rows {
                row[col] = ch;
            }
        } else if cmd.bank < banks {
            rows[cmd.bank][col] = ch;
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "cycles {from}..{} ({} per column){}\n",
        from + (cols as u64) * DRAM_CYCLE,
        DRAM_CYCLE,
        if clipped { ", clipped" } else { "" }
    ));
    for (b, row) in rows.iter().enumerate() {
        out.push_str(&format!("bank {b:>2} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RequestId;

    fn cmd(kind: CommandKind, bank: usize, at: u64) -> (u64, Command) {
        (at, Command { kind, bank, row: 0, col: 0, request: RequestId(0) })
    }

    #[test]
    fn renders_commands_in_the_right_cells() {
        let trace = vec![
            cmd(CommandKind::Activate, 0, 0),
            cmd(CommandKind::Read, 0, 60),
            cmd(CommandKind::Precharge, 1, 30),
        ];
        let art = render_timeline(&trace, 2, 0, 100, 80);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        let bank0 = lines[1].split('|').nth(1).unwrap();
        let bank1 = lines[2].split('|').nth(1).unwrap();
        assert_eq!(&bank0[0..1], "A");
        assert_eq!(&bank0[6..7], "R");
        assert_eq!(&bank1[3..4], "P");
    }

    #[test]
    fn refresh_spans_all_banks() {
        let trace = vec![cmd(CommandKind::Refresh, 0, 20)];
        let art = render_timeline(&trace, 3, 0, 50, 80);
        for line in art.lines().skip(1) {
            assert!(line.contains('F'), "{line}");
        }
    }

    #[test]
    fn window_clipping_is_reported() {
        let trace = vec![cmd(CommandKind::Activate, 0, 0)];
        let art = render_timeline(&trace, 1, 0, 100_000, 16);
        assert!(art.contains("clipped"));
        assert!(art.lines().nth(1).unwrap().len() <= 16 + 10);
    }

    #[test]
    fn out_of_window_commands_are_ignored() {
        let trace = vec![cmd(CommandKind::Read, 0, 500)];
        let art = render_timeline(&trace, 1, 0, 100, 80);
        assert!(!art.contains('R'));
    }
}
