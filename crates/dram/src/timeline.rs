//! ASCII rendering of command streams: a per-bank timeline in the style of
//! the paper's service-order diagrams (Figs. 1-3).
//!
//! Feed it the events collected by a [`parbs_obs::CollectSink`] (or any
//! other recorded event stream); each bank becomes one row, each DRAM-cycle
//! column one character: `A` activate, `R` read, `W` write, `P` precharge,
//! `F` refresh (spanning the refreshed rank's banks), `.` idle.

use parbs_obs::Event;

use crate::{DramConfig, DRAM_CYCLE};

/// A cell to paint: `(cycle, glyph, bank span)`; refreshes span a
/// half-open range of banks (the refreshed rank), other commands a single
/// bank.
type Cell = (u64, u8, std::ops::Range<usize>);

fn render_cells(
    cells: impl Iterator<Item = Cell>,
    banks: usize,
    from: u64,
    to: u64,
    max_cols: usize,
) -> String {
    let to = to.max(from + DRAM_CYCLE);
    let cols = (((to - from) / DRAM_CYCLE) as usize).min(max_cols.max(1));
    let clipped = ((to - from) / DRAM_CYCLE) as usize > cols;
    let mut rows = vec![vec![b'.'; cols]; banks];
    for (at, ch, span) in cells {
        if at < from || at >= from + (cols as u64) * DRAM_CYCLE {
            continue;
        }
        let col = ((at - from) / DRAM_CYCLE) as usize;
        for b in span {
            if b < banks {
                rows[b][col] = ch;
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "cycles {from}..{} ({} per column){}\n",
        from + (cols as u64) * DRAM_CYCLE,
        DRAM_CYCLE,
        if clipped { ", clipped" } else { "" }
    ));
    for (b, row) in rows.iter().enumerate() {
        out.push_str(&format!("bank {b:>2} |"));
        out.push_str(std::str::from_utf8(row).expect("ascii"));
        out.push('\n');
    }
    out
}

/// Renders the command events of `events` between `from` and `to`
/// (processor cycles) as one text row per bank, deriving the bank count
/// from `config`. Refresh events span the banks of their target rank.
/// Non-command events are ignored. Long windows are clipped to `max_cols`
/// DRAM cycles (an ellipsis marks the cut).
///
/// # Examples
///
/// ```
/// use parbs_dram::{render_timeline, DramConfig};
/// use parbs_obs::{CmdKind, Event};
/// let events = vec![
///     Event::CommandIssued {
///         at: 0, request: 0, thread: 0, kind: CmdKind::Activate,
///         rank: 0, bank: 0, row: 1, col: 0, marked: false, service: None, data_end: None,
///     },
///     Event::CommandIssued {
///         at: 60, request: 0, thread: 0, kind: CmdKind::Read,
///         rank: 0, bank: 0, row: 1, col: 0, marked: false, service: None, data_end: Some(100),
///     },
/// ];
/// let art = render_timeline(&events, &DramConfig::default(), 0, 100, 80);
/// assert_eq!(art.lines().count(), 9, "header + Table 2's 8 banks");
/// assert!(art.contains('A') && art.contains('R'));
/// ```
#[must_use]
pub fn render_timeline(
    events: &[Event],
    config: &DramConfig,
    from: u64,
    to: u64,
    max_cols: usize,
) -> String {
    let bpr = config.banks_per_rank();
    let cells = events.iter().filter_map(|e| match *e {
        Event::CommandIssued { at, kind, bank, .. } => Some((at, kind.glyph(), bank..bank + 1)),
        Event::Refresh { at, rank } => Some((at, b'F', rank * bpr..(rank + 1) * bpr)),
        _ => None,
    });
    render_cells(cells, config.banks_per_channel(), from, to, max_cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_obs::CmdKind;

    fn cmd(kind: CmdKind, bank: usize, at: u64) -> Event {
        Event::CommandIssued {
            at,
            request: 0,
            thread: 0,
            kind,
            rank: 0,
            bank,
            row: 0,
            col: 0,
            marked: false,
            service: None,
            data_end: None,
        }
    }

    fn banks_config(banks: usize) -> DramConfig {
        let mut cfg = DramConfig::default();
        cfg.geometry.banks_per_rank = banks;
        cfg
    }

    #[test]
    fn renders_commands_in_the_right_cells() {
        let events = vec![
            cmd(CmdKind::Activate, 0, 0),
            cmd(CmdKind::Read, 0, 60),
            cmd(CmdKind::Precharge, 1, 30),
        ];
        let art = render_timeline(&events, &banks_config(2), 0, 100, 80);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 3);
        let bank0 = lines[1].split('|').nth(1).unwrap();
        let bank1 = lines[2].split('|').nth(1).unwrap();
        assert_eq!(&bank0[0..1], "A");
        assert_eq!(&bank0[6..7], "R");
        assert_eq!(&bank1[3..4], "P");
    }

    #[test]
    fn refresh_spans_all_banks_of_its_rank() {
        let events = vec![Event::Refresh { at: 20, rank: 0 }];
        let art = render_timeline(&events, &banks_config(3), 0, 50, 80);
        for line in art.lines().skip(1) {
            assert!(line.contains('F'), "{line}");
        }
    }

    #[test]
    fn refresh_leaves_other_ranks_idle() {
        let events = vec![Event::Refresh { at: 20, rank: 1 }];
        let mut cfg = banks_config(2);
        cfg.geometry.ranks_per_channel = 2;
        let art = render_timeline(&events, &cfg, 0, 50, 80);
        let lines: Vec<&str> = art.lines().collect();
        assert!(!lines[1].contains('F') && !lines[2].contains('F'), "rank 0 stays idle");
        assert!(lines[3].contains('F') && lines[4].contains('F'), "rank 1 refreshes");
    }

    #[test]
    fn window_clipping_is_reported() {
        let events = vec![cmd(CmdKind::Activate, 0, 0)];
        let art = render_timeline(&events, &banks_config(1), 0, 100_000, 16);
        assert!(art.contains("clipped"));
        assert!(art.lines().nth(1).unwrap().len() <= 16 + 10);
    }

    #[test]
    fn out_of_window_and_non_command_events_are_ignored() {
        let events = vec![
            cmd(CmdKind::Read, 0, 500),
            Event::Enqueued {
                at: 10,
                request: 0,
                thread: 0,
                write: false,
                rank: 0,
                bank: 0,
                row: 0,
            },
            Event::Marked { at: 20, request: 0, thread: 0, rank: 0, bank: 0 },
        ];
        let art = render_timeline(&events, &banks_config(1), 0, 100, 80);
        assert!(!art.contains('R'));
    }
}
