//! DRAM system configuration (the memory half of the paper's Table 2).

use crate::{AddressMapper, Geometry, MappingPolicy, TimingParams};

/// Capacity, geometry and timing parameters of the simulated DRAM system.
///
/// Structural parameters live in [`Geometry`] and the address-to-coordinate
/// layout in [`MappingPolicy`]; both flow from here into the
/// [`Controller`](crate::Controller), [`Channel`](crate::Channel), protocol
/// checker and address mapper so every layer agrees on the same shape.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Channel / rank / bank / row / column shape of the DRAM system.
    pub geometry: Geometry,
    /// How line addresses map onto geometry coordinates.
    pub mapping: MappingPolicy,
    /// Read request buffer capacity per channel (128 in Table 2).
    pub request_buffer_cap: usize,
    /// Write buffer capacity per channel (64 in Table 2).
    pub write_buffer_cap: usize,
    /// Write-buffer occupancy (fraction of capacity) above which the
    /// controller starts draining writes even while reads are pending.
    pub write_drain_watermark: f64,
    /// DRAM timing constraints.
    pub timing: TimingParams,
}

impl DramConfig {
    /// Table 2 baseline for a 4-core system: one DDR2-800 channel with a
    /// single rank of 8 banks, 2 KB row buffers, row-interleaved mapping
    /// with XOR bank permutation, 128-entry request buffer, 64-entry write
    /// buffer.
    #[must_use]
    pub fn baseline_4core() -> Self {
        DramConfig {
            geometry: Geometry::table2(),
            mapping: MappingPolicy::baseline(),
            request_buffer_cap: 128,
            write_buffer_cap: 64,
            write_drain_watermark: 0.75,
            timing: TimingParams::ddr2_800(),
        }
    }

    /// Table 2 configuration scaled to `cores` cores: channels grow 1/2/4 for
    /// 4/8/16 cores (one channel per 4 cores, minimum 1).
    #[must_use]
    pub fn for_cores(cores: usize) -> Self {
        let mut cfg = Self::baseline_4core();
        cfg.geometry.channels = (cores / 4).max(1).next_power_of_two();
        cfg
    }

    /// Independent, lock-step channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.geometry.channels
    }

    /// Ranks sharing each channel's command/data bus.
    #[must_use]
    pub fn ranks_per_channel(&self) -> usize {
        self.geometry.ranks_per_channel
    }

    /// Banks in each rank.
    #[must_use]
    pub fn banks_per_rank(&self) -> usize {
        self.geometry.banks_per_rank
    }

    /// Total banks per channel (`ranks_per_channel * banks_per_rank`).
    #[must_use]
    pub fn banks_per_channel(&self) -> usize {
        self.geometry.banks_per_channel()
    }

    /// Row-buffer size in cache lines.
    #[must_use]
    pub fn cols_per_row(&self) -> u64 {
        self.geometry.cols_per_row
    }

    /// Rows per bank.
    #[must_use]
    pub fn rows_per_bank(&self) -> u64 {
        self.geometry.rows_per_bank
    }

    /// The address mapper induced by this geometry and mapping policy.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid; call [`DramConfig::validate`]
    /// first when the configuration comes from untrusted input.
    #[must_use]
    pub fn mapper(&self) -> AddressMapper {
        AddressMapper::new(self.geometry, self.mapping)
            .expect("DramConfig::mapper: invalid geometry (run validate() first)")
    }

    /// Checks configuration consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field (zero sizes,
    /// non-power-of-two geometry, out-of-range watermark, timing violations).
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate().map_err(|e| e.to_string())?;
        if self.request_buffer_cap == 0 {
            return Err("request_buffer_cap must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.write_drain_watermark) {
            return Err("write_drain_watermark must be within [0, 1]".into());
        }
        self.timing.validate()
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::baseline_4core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = DramConfig::baseline_4core();
        assert_eq!(c.channels(), 1);
        assert_eq!(c.ranks_per_channel(), 1);
        assert_eq!(c.banks_per_channel(), 8);
        assert_eq!(c.cols_per_row() * 64, 2048, "2 KB row buffer");
        assert_eq!(c.request_buffer_cap, 128);
        assert_eq!(c.write_buffer_cap, 64);
        assert_eq!(c.mapping, MappingPolicy::RowInterleaved { xor_permute: true });
        c.validate().unwrap();
    }

    #[test]
    fn channels_scale_with_cores() {
        assert_eq!(DramConfig::for_cores(4).channels(), 1);
        assert_eq!(DramConfig::for_cores(8).channels(), 2);
        assert_eq!(DramConfig::for_cores(16).channels(), 4);
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut c = DramConfig::baseline_4core();
        c.geometry.banks_per_rank = 6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_watermark() {
        let mut c = DramConfig::baseline_4core();
        c.write_drain_watermark = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn mapper_follows_the_configured_policy() {
        let mut c = DramConfig::baseline_4core();
        c.geometry.ranks_per_channel = 2;
        c.mapping = MappingPolicy::LineInterleaved { xor_permute: false };
        let m = c.mapper();
        assert_eq!(m.geometry(), c.geometry);
        assert_eq!(m.policy(), c.mapping);
    }
}
