//! DRAM system configuration (the memory half of the paper's Table 2).

use crate::{AddressMapper, TimingParams};

/// Geometry and capacity parameters of the simulated DRAM system.
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Independent, lock-step channels. The paper scales channels with core
    /// count: 1 / 2 / 4 for 4 / 8 / 16 cores.
    pub channels: usize,
    /// Banks per channel (8 in Table 2).
    pub banks_per_channel: usize,
    /// Row-buffer size in cache lines: 2 KB rows / 64 B lines = 32.
    pub cols_per_row: u64,
    /// Rows per bank. Only affects address decoding range, not timing.
    pub rows_per_bank: u64,
    /// Read request buffer capacity per channel (128 in Table 2).
    pub request_buffer_cap: usize,
    /// Write buffer capacity per channel (64 in Table 2).
    pub write_buffer_cap: usize,
    /// Write-buffer occupancy (fraction of capacity) above which the
    /// controller starts draining writes even while reads are pending.
    pub write_drain_watermark: f64,
    /// DRAM timing constraints.
    pub timing: TimingParams,
}

impl DramConfig {
    /// Table 2 baseline for a 4-core system: one DDR2-800 channel, 8 banks,
    /// 2 KB row buffers, 128-entry request buffer, 64-entry write buffer.
    #[must_use]
    pub fn baseline_4core() -> Self {
        DramConfig {
            channels: 1,
            banks_per_channel: 8,
            cols_per_row: 32,
            rows_per_bank: 16_384,
            request_buffer_cap: 128,
            write_buffer_cap: 64,
            write_drain_watermark: 0.75,
            timing: TimingParams::ddr2_800(),
        }
    }

    /// Table 2 configuration scaled to `cores` cores: channels grow 1/2/4 for
    /// 4/8/16 cores (one channel per 4 cores, minimum 1).
    #[must_use]
    pub fn for_cores(cores: usize) -> Self {
        let mut cfg = Self::baseline_4core();
        cfg.channels = (cores / 4).max(1).next_power_of_two();
        cfg
    }

    /// The address mapper induced by this geometry.
    #[must_use]
    pub fn mapper(&self) -> AddressMapper {
        AddressMapper::new(self.channels, self.banks_per_channel, self.cols_per_row)
    }

    /// Checks configuration consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid field (zero sizes,
    /// non-power-of-two geometry, out-of-range watermark, timing violations).
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || !self.channels.is_power_of_two() {
            return Err("channels must be a nonzero power of two".into());
        }
        if self.banks_per_channel == 0 || !self.banks_per_channel.is_power_of_two() {
            return Err("banks_per_channel must be a nonzero power of two".into());
        }
        if !self.cols_per_row.is_power_of_two() {
            return Err("cols_per_row must be a power of two".into());
        }
        if self.request_buffer_cap == 0 {
            return Err("request_buffer_cap must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.write_drain_watermark) {
            return Err("write_drain_watermark must be within [0, 1]".into());
        }
        self.timing.validate()
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::baseline_4core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table2() {
        let c = DramConfig::baseline_4core();
        assert_eq!(c.channels, 1);
        assert_eq!(c.banks_per_channel, 8);
        assert_eq!(c.cols_per_row * 64, 2048, "2 KB row buffer");
        assert_eq!(c.request_buffer_cap, 128);
        assert_eq!(c.write_buffer_cap, 64);
        c.validate().unwrap();
    }

    #[test]
    fn channels_scale_with_cores() {
        assert_eq!(DramConfig::for_cores(4).channels, 1);
        assert_eq!(DramConfig::for_cores(8).channels, 2);
        assert_eq!(DramConfig::for_cores(16).channels, 4);
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut c = DramConfig::baseline_4core();
        c.banks_per_channel = 6;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_watermark() {
        let mut c = DramConfig::baseline_4core();
        c.write_drain_watermark = 1.5;
        assert!(c.validate().is_err());
    }
}
