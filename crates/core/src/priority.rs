//! The per-request priority value of Figure 4.
//!
//! PAR-BS extends FR-FCFS's priority (row-hit bit + request id) with a
//! marked bit and the thread rank; the full value is compared numerically,
//! larger = scheduled first. A [`PriorityValue`] packs the fields exactly in
//! the figure's order so the comparison is a single integer compare — the
//! implementation-simplicity argument of Section 6.

/// A request's packed scheduling priority (Figure 4), ordered
/// most-significant-field first:
///
/// 1. marked bit (current batch first),
/// 2. thread priority level (inverted; Section 5's PRIORITY rule),
/// 3. row-hit bit,
/// 4. thread rank (inverted: higher rank = larger value),
/// 5. request age (inverted id: older = larger value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PriorityValue(u128);

impl PriorityValue {
    /// Packs the priority fields. `level_key` is the thread-priority sort
    /// key (smaller = more important; `u16::MAX` = opportunistic), `rank` is
    /// the within-batch thread rank (smaller = higher rank), and
    /// `request_id` the age-ordered id (smaller = older).
    #[must_use]
    pub fn pack(marked: bool, level_key: u16, row_hit: bool, rank: u32, request_id: u64) -> Self {
        let marked = u128::from(marked);
        let level = u128::from(u16::MAX - level_key);
        let hit = u128::from(row_hit);
        let rank = u128::from(u32::MAX - rank);
        let age = u128::from(u64::MAX - request_id);
        PriorityValue(marked << 113 | level << 97 | hit << 96 | age | rank << 64)
    }

    /// The packed value (for inspection/printing).
    #[must_use]
    pub fn bits(self) -> u128 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marked_dominates_everything() {
        let marked_worst = PriorityValue::pack(true, u16::MAX, false, u32::MAX, u64::MAX);
        let unmarked_best = PriorityValue::pack(false, 1, true, 0, 0);
        assert!(marked_worst > unmarked_best, "BS rule: marked requests first");
    }

    #[test]
    fn priority_level_dominates_row_hit() {
        let high_pri_conflict = PriorityValue::pack(true, 1, false, 5, 10);
        let low_pri_hit = PriorityValue::pack(true, 2, true, 0, 0);
        assert!(high_pri_conflict > low_pri_hit, "Section 5 PRIORITY rule precedes RH");
    }

    #[test]
    fn row_hit_dominates_rank() {
        let hit_low_rank = PriorityValue::pack(true, 1, true, 9, 10);
        let conflict_high_rank = PriorityValue::pack(true, 1, false, 0, 0);
        assert!(hit_low_rank > conflict_high_rank, "RH rule precedes RANK");
    }

    #[test]
    fn rank_dominates_age() {
        let young_high_rank = PriorityValue::pack(true, 1, false, 0, 1_000);
        let old_low_rank = PriorityValue::pack(true, 1, false, 1, 0);
        assert!(young_high_rank > old_low_rank, "RANK rule precedes FCFS");
    }

    #[test]
    fn age_breaks_final_ties() {
        let old = PriorityValue::pack(true, 1, false, 0, 5);
        let young = PriorityValue::pack(true, 1, false, 0, 6);
        assert!(old > young, "oldest first");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn fields() -> impl Strategy<Value = (bool, u16, bool, u32, u64)> {
        (any::<bool>(), any::<u16>(), any::<bool>(), any::<u32>(), any::<u64>())
    }

    proptest! {
        /// The packed comparison implements the lexicographic rule order
        /// (BS, PRIORITY, RH, RANK, FCFS) exactly.
        #[test]
        fn pack_is_lexicographic(a in fields(), b in fields()) {
            let key = |(marked, level, hit, rank, id): (bool, u16, bool, u32, u64)| {
                (marked, std::cmp::Reverse(level), hit, std::cmp::Reverse(rank), std::cmp::Reverse(id))
            };
            let lhs = PriorityValue::pack(a.0, a.1, a.2, a.3, a.4);
            let rhs = PriorityValue::pack(b.0, b.1, b.2, b.3, b.4);
            prop_assert_eq!(lhs.cmp(&rhs), key(a).cmp(&key(b)));
        }

        /// Packing is injective over the fields (no two distinct requests
        /// collide), so the comparison is a total order on requests.
        #[test]
        fn pack_is_injective(a in fields(), b in fields()) {
            let lhs = PriorityValue::pack(a.0, a.1, a.2, a.3, a.4);
            let rhs = PriorityValue::pack(b.0, b.1, b.2, b.3, b.4);
            prop_assert_eq!(lhs == rhs, a == b);
        }
    }
}
