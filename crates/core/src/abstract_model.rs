//! The abstract within-batch scheduling model of Figure 3.
//!
//! Figure 3 strips DRAM scheduling down to its combinatorial core: a batch
//! of requests queued at independent banks, a latency of 1 unit for a
//! row-conflict and 0.5 for a row-hit (two same-row requests serviced
//! consecutively), and three policies — FCFS, FR-FCFS, and PAR-BS. A
//! thread's **batch-completion time** is when its last request finishes; it
//! is a direct proxy for the thread's memory stall time within the batch.
//!
//! The paper reports average completion times of **5.0** (FCFS), **4.375**
//! (FR-FCFS), and **3.125** (PAR-BS) for its example batch;
//! [`AbstractBatch::figure3_example`] reproduces all twelve per-thread
//! numbers exactly.

use crate::{compute_ranks, Ranking, ThreadLoad};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One request of the abstract batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AbstractRequest {
    /// Global arrival index (smaller = older).
    pub arrival: u32,
    /// Issuing thread (0-based).
    pub thread: usize,
    /// Row identifier within the bank; consecutive same-row services hit.
    pub row: u8,
}

/// Scheduling policy of the abstract model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbstractPolicy {
    /// Arrival order, oblivious to rows.
    Fcfs,
    /// Row-hit first (oldest hit), then oldest.
    FrFcfs,
    /// Row-hit first, then highest Max-Total rank, then oldest — PAR-BS's
    /// within-batch rules with ranks computed from the batch itself.
    ParBs,
}

/// A batch of requests distributed over independent banks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractBatch {
    banks: Vec<Vec<AbstractRequest>>,
    threads: usize,
}

/// Latency of a row-conflict (or first) access, in abstract units.
const CONFLICT_LATENCY: f64 = 1.0;
/// Latency of a row-hit access.
const HIT_LATENCY: f64 = 0.5;

impl AbstractBatch {
    /// Creates a batch from per-bank queues (each in arrival order).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or a request references a thread out of
    /// range.
    #[must_use]
    pub fn new(banks: Vec<Vec<AbstractRequest>>, threads: usize) -> Self {
        assert!(threads > 0);
        for q in &banks {
            for r in q {
                assert!(r.thread < threads, "request thread out of range");
            }
        }
        AbstractBatch { banks, threads }
    }

    /// A batch consistent with the paper's Figure 3: 4 threads, 4 banks,
    /// thread 1 with three single requests to different banks
    /// (max-bank-load 1), threads 2 and 3 with max-bank-load 2 (thread 2
    /// with the smaller total), and thread 4 with a max-bank-load of 5.
    /// It reproduces the figure's twelve batch-completion times exactly:
    /// FCFS (4, 4, 5, 7), FR-FCFS (5.5, 3, 4.5, 4.5), PAR-BS (1, 2, 4, 5.5).
    ///
    /// (The published figure is a drawing; this layout was recovered by
    /// constraint search over all structural conditions the paper states,
    /// so it is behaviourally equivalent under all three policies.)
    #[must_use]
    pub fn figure3_example() -> Self {
        let r = |arrival: u32, thread: usize, row: u8| AbstractRequest { arrival, thread, row };
        AbstractBatch::new(
            vec![
                vec![r(2, 3, 2), r(3, 2, 0), r(11, 0, 1), r(16, 2, 2)],
                vec![r(5, 2, 2), r(6, 1, 1), r(8, 3, 0), r(14, 1, 1), r(18, 2, 0), r(19, 3, 2)],
                vec![
                    r(0, 2, 1),
                    r(4, 1, 1),
                    r(7, 3, 0),
                    r(9, 3, 0),
                    r(10, 0, 2),
                    r(12, 3, 0),
                    r(13, 3, 1),
                    r(17, 3, 0),
                ],
                vec![r(1, 1, 2), r(15, 0, 0)],
            ],
            4,
        )
    }

    /// Number of threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Max-Total thread loads of this batch (Rule 3 inputs).
    #[must_use]
    pub fn thread_loads(&self) -> Vec<ThreadLoad> {
        let mut loads: Vec<ThreadLoad> = (0..self.threads)
            .map(|thread| ThreadLoad { thread, max_bank_load: 0, total_load: 0 })
            .collect();
        for q in &self.banks {
            let mut in_bank = vec![0u32; self.threads];
            for r in q {
                in_bank[r.thread] += 1;
            }
            for (t, &n) in in_bank.iter().enumerate() {
                loads[t].max_bank_load = loads[t].max_bank_load.max(n);
                loads[t].total_load += n;
            }
        }
        loads
    }

    /// Simulates the batch under `policy` and returns each thread's
    /// batch-completion time (threads with no requests complete at 0).
    #[must_use]
    pub fn completion_times(&self, policy: AbstractPolicy) -> Vec<f64> {
        let ranks: Vec<u32> = match policy {
            AbstractPolicy::ParBs => {
                let loads = self.thread_loads();
                let mut rng = StdRng::seed_from_u64(0);
                let ranked = compute_ranks(Ranking::MaxTotal, &loads, 0, &mut rng);
                let mut v = vec![u32::MAX; self.threads];
                for (t, r) in ranked {
                    v[t] = r;
                }
                v
            }
            _ => vec![0; self.threads],
        };
        let mut finish = vec![0.0f64; self.threads];
        for q in &self.banks {
            let mut queue = q.clone();
            let mut open_row: Option<u8> = None;
            let mut t_now = 0.0;
            while !queue.is_empty() {
                let pick = match policy {
                    AbstractPolicy::Fcfs => 0,
                    AbstractPolicy::FrFcfs | AbstractPolicy::ParBs => {
                        let hit = queue
                            .iter()
                            .enumerate()
                            .filter(|(_, r)| Some(r.row) == open_row)
                            .map(|(i, _)| i)
                            .min_by_key(|&i| queue[i].arrival);
                        match (hit, policy) {
                            (Some(i), _) => i,
                            (None, AbstractPolicy::ParBs) => (0..queue.len())
                                .min_by_key(|&i| (ranks[queue[i].thread], queue[i].arrival))
                                .expect("queue not empty"),
                            (None, _) => (0..queue.len())
                                .min_by_key(|&i| queue[i].arrival)
                                .expect("queue not empty"),
                        }
                    }
                };
                let r = queue.remove(pick);
                let latency = if Some(r.row) == open_row { HIT_LATENCY } else { CONFLICT_LATENCY };
                t_now += latency;
                open_row = Some(r.row);
                finish[r.thread] = finish[r.thread].max(t_now);
            }
        }
        finish
    }

    /// Average batch-completion time over all threads — the quantity
    /// shortest-job-first scheduling minimizes.
    #[must_use]
    pub fn average_completion(&self, policy: AbstractPolicy) -> f64 {
        let times = self.completion_times(policy);
        times.iter().sum::<f64>() / times.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure3_fcfs_times() {
        let b = AbstractBatch::figure3_example();
        assert_eq!(b.completion_times(AbstractPolicy::Fcfs), vec![4.0, 4.0, 5.0, 7.0]);
        assert!((b.average_completion(AbstractPolicy::Fcfs) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn figure3_frfcfs_times() {
        let b = AbstractBatch::figure3_example();
        assert_eq!(b.completion_times(AbstractPolicy::FrFcfs), vec![5.5, 3.0, 4.5, 4.5]);
        assert!((b.average_completion(AbstractPolicy::FrFcfs) - 4.375).abs() < 1e-12);
    }

    #[test]
    fn figure3_parbs_times() {
        let b = AbstractBatch::figure3_example();
        assert_eq!(b.completion_times(AbstractPolicy::ParBs), vec![1.0, 2.0, 4.0, 5.5]);
        assert!((b.average_completion(AbstractPolicy::ParBs) - 3.125).abs() < 1e-12);
    }

    #[test]
    fn figure3_structure_matches_paper_description() {
        let b = AbstractBatch::figure3_example();
        let loads = b.thread_loads();
        assert_eq!(loads[0].max_bank_load, 1, "thread 1: requests all to different banks");
        assert_eq!(loads[0].total_load, 3);
        assert_eq!(loads[1].max_bank_load, 2);
        assert_eq!(loads[2].max_bank_load, 2);
        assert!(loads[1].total_load < loads[2].total_load, "thread 2 has fewer total");
        assert_eq!(loads[3].max_bank_load, 5, "thread 4: max-bank-load of 5");
    }

    #[test]
    fn parbs_never_loses_to_fcfs_on_average() {
        // Shortest-job-first within a batch cannot be worse than arrival
        // order for the figure's batch.
        let b = AbstractBatch::figure3_example();
        assert!(
            b.average_completion(AbstractPolicy::ParBs)
                <= b.average_completion(AbstractPolicy::Fcfs)
        );
    }

    #[test]
    fn single_thread_single_bank_trivial() {
        let b = AbstractBatch::new(
            vec![vec![
                AbstractRequest { arrival: 0, thread: 0, row: 1 },
                AbstractRequest { arrival: 1, thread: 0, row: 1 },
            ]],
            1,
        );
        // conflict + hit = 1.5 under every policy.
        for p in [AbstractPolicy::Fcfs, AbstractPolicy::FrFcfs, AbstractPolicy::ParBs] {
            assert_eq!(b.completion_times(p), vec![1.5]);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn thread_out_of_range_rejected() {
        let _ =
            AbstractBatch::new(vec![vec![AbstractRequest { arrival: 0, thread: 5, row: 0 }]], 2);
    }
}
