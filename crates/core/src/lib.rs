//! **PAR-BS** — Parallelism-Aware Batch Scheduling for shared DRAM systems.
//!
//! This crate implements the DRAM scheduler of Mutlu & Moscibroda,
//! *Parallelism-Aware Batch Scheduling: Enhancing both Performance and
//! Fairness of Shared DRAM Systems* (ISCA 2008), on top of the
//! [`parbs_dram`] substrate. The scheduler combines two ideas:
//!
//! 1. **Request batching (BS)** — outstanding requests are grouped into
//!    batches; requests of the current batch ("marked" requests) are always
//!    prioritized over newer requests, so no thread can starve another's
//!    requests beyond one batch (Rule 1, [`BatchingMode`], `Marking-Cap`).
//! 2. **Parallelism-aware within-batch scheduling (PAR)** — within a batch,
//!    requests are prioritized *marked-first, row-hit-first,
//!    higher-rank-first, oldest-first* (Rule 2), where thread ranks follow
//!    the shortest-job-first **Max-Total** rule (Rule 3): the thread whose
//!    heaviest bank queue is shortest is ranked highest, so its requests are
//!    serviced in parallel across banks and it leaves the batch quickly.
//!
//! System-software thread priorities are supported via priority-based
//! marking (a priority-X thread joins every Xth batch) and an extra
//! within-batch rule; a special lowest level gives **purely opportunistic**
//! service ([`ThreadPriority::Opportunistic`]).
//!
//! The crate also provides the paper's hardware-cost model (Table 1 — 1412
//! extra bits for an 8-core, 128-entry, 8-bank configuration) and the
//! abstract within-batch scheduling model of Figure 3.
//!
//! # Examples
//!
//! ```
//! use parbs::{ParBsConfig, ParBsScheduler};
//! use parbs_dram::{Controller, DramConfig};
//!
//! let sched = ParBsScheduler::new(ParBsConfig::default());
//! let ctrl = Controller::new(DramConfig::default(), Box::new(sched));
//! assert_eq!(ctrl.scheduler_name(), "PAR-BS");
//! ```

mod abstract_model;
mod config;
mod hw_cost;
mod priority;
mod ranking;
mod scheduler;

pub use abstract_model::{AbstractBatch, AbstractPolicy, AbstractRequest};
pub use config::{AdaptiveCap, BatchingMode, ParBsConfig, Ranking, ThreadPriority};
pub use hw_cost::{parbs_extra_state_bits, HwCostBreakdown};
pub use priority::PriorityValue;
pub use ranking::{compute_ranks, ThreadLoad};
pub use scheduler::{ParBsScheduler, ParBsStats};

/// Sparse per-thread state map (re-exported from [`parbs_dram`]): the
/// storage every scheduler in this workspace uses for per-thread policy
/// state, keeping per-cycle cost O(active threads) rather than O(max
/// thread id) when the request stream comes from an open-loop flow
/// frontend with tens of thousands of requesters.
pub use parbs_dram::ThreadTable;
