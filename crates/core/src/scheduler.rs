//! The PAR-BS memory scheduler.

use std::cmp::Ordering;

use parbs_dram::{
    FieldSemantic, KeyField, KeyLayout, LivenessContract, LivenessPolicy, MemoryScheduler, Request,
    SchedView, StarvationClaim, ThreadId, ThreadTable,
};
use parbs_obs::{Event, RankEntry};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{
    compute_ranks, BatchingMode, ParBsConfig, PriorityValue, Ranking, ThreadLoad, ThreadPriority,
};

/// Telemetry counters of one PAR-BS instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ParBsStats {
    /// Batches formed so far.
    pub batches_formed: u64,
    /// Requests marked over all batches.
    pub requests_marked: u64,
    /// Sum of batch durations (formation → drain), for averaging.
    pub total_batch_cycles: u64,
    /// Completed batches (those whose drain has been observed).
    pub batches_completed: u64,
}

impl ParBsStats {
    /// Mean requests per batch.
    #[must_use]
    pub fn avg_batch_size(&self) -> f64 {
        if self.batches_formed == 0 {
            0.0
        } else {
            self.requests_marked as f64 / self.batches_formed as f64
        }
    }

    /// Mean cycles from batch formation to batch drain.
    #[must_use]
    pub fn avg_batch_cycles(&self) -> f64 {
        if self.batches_completed == 0 {
            0.0
        } else {
            self.total_batch_cycles as f64 / self.batches_completed as f64
        }
    }
}

/// Parallelism-Aware Batch Scheduler (Rules 1-3 of the paper plus the
/// Section 4.4 design alternatives and the Section 5 priority extensions).
///
/// Plug it into a [`parbs_dram::Controller`]; it maintains batches by
/// mutating the `marked` bit of queued requests in
/// [`MemoryScheduler::pre_schedule`] and orders requests with the packed
/// [`PriorityValue`] of Figure 4.
#[derive(Debug)]
pub struct ParBsScheduler {
    cfg: ParBsConfig,
    /// Rank of each thread in the current batch; unregistered = not in the
    /// current batch (lowest, `u32::MAX`).
    ranks: ThreadTable<u32>,
    /// System-software priority per thread (unregistered = level 1).
    priorities: ThreadTable<ThreadPriority>,
    /// Marking budget already granted this batch, per bank. Cleared (entries
    /// retired) at each batch boundary, so only the threads of the current
    /// batch hold state.
    granted: ThreadTable<Vec<u32>>,
    /// Scratch for [`ParBsScheduler::mark`]: `(id, queue index)` of unmarked
    /// eligible requests. Reused so the per-slot eslot/static re-mark checks
    /// allocate nothing.
    mark_scratch: Vec<(u64, usize)>,
    /// Scratch for [`ParBsScheduler::loads`]: `(thread, bank)` of marked
    /// requests.
    load_pairs: Vec<(usize, usize)>,
    /// The batch index marking eligibility was last refreshed for
    /// (priority-based marking: a level-X thread joins every Xth batch).
    eligible_batch_no: u64,
    batch_formed_at: u64,
    batch_open: bool,
    /// Cap currently in force (tracks `cfg.marking_cap` unless adaptive).
    current_cap: Option<u32>,
    last_static_marking: Option<u64>,
    rng: StdRng,
    stats: ParBsStats,
    /// Whether an event sink is attached downstream (controller-driven via
    /// [`MemoryScheduler::set_observing`]). When false, no events are built.
    observing: bool,
    /// Banks per rank of the channel being scheduled, learned from the
    /// [`SchedView`] each `pre_schedule` so emitted `Marked` events can
    /// carry the rank coordinate.
    banks_per_rank: usize,
    /// Buffered scheduler events; the controller drains these once per
    /// decision slot with [`MemoryScheduler::drain_events`].
    obs_events: Vec<Event>,
}

impl ParBsScheduler {
    /// Creates a PAR-BS scheduler.
    #[must_use]
    pub fn new(cfg: ParBsConfig) -> Self {
        ParBsScheduler {
            cfg,
            ranks: ThreadTable::new(),
            priorities: ThreadTable::new(),
            granted: ThreadTable::new(),
            mark_scratch: Vec::new(),
            load_pairs: Vec::new(),
            eligible_batch_no: 0,
            batch_formed_at: 0,
            batch_open: false,
            current_cap: cfg
                .adaptive_cap
                .map(|a| cfg.marking_cap.unwrap_or(a.max).clamp(a.min, a.max))
                .or(cfg.marking_cap),
            last_static_marking: None,
            rng: StdRng::seed_from_u64(cfg.seed),
            stats: ParBsStats::default(),
            observing: false,
            banks_per_rank: 1,
            obs_events: Vec::new(),
        }
    }

    /// Sets a thread's system-software priority (Section 5). Level 1 is the
    /// default; [`ThreadPriority::Opportunistic`] requests are never marked
    /// and yield to everything else.
    pub fn set_thread_priority(&mut self, thread: ThreadId, priority: ThreadPriority) {
        self.priorities.insert(thread, priority);
    }

    /// Telemetry counters.
    #[must_use]
    pub fn stats(&self) -> &ParBsStats {
        &self.stats
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ParBsConfig {
        &self.cfg
    }

    /// Current rank of a thread (0 = highest; `u32::MAX` = unranked).
    #[must_use]
    pub fn rank_of(&self, thread: ThreadId) -> u32 {
        self.ranks.get(thread).copied().unwrap_or(u32::MAX)
    }

    fn priority_of(&self, thread: usize) -> ThreadPriority {
        self.priorities.get(ThreadId(thread)).copied().unwrap_or_default()
    }

    /// Marking eligibility of `thread` for the batch the cadence was last
    /// refreshed for: a level-X thread joins every Xth batch, opportunistic
    /// threads never join (Section 5).
    fn is_eligible(&self, thread: usize) -> bool {
        match self.priority_of(thread).period() {
            Some(period) => self.eligible_batch_no.is_multiple_of(period),
            None => false,
        }
    }

    /// The marking budget already spent by `(thread, bank)` this batch,
    /// registering the thread on demand.
    fn granted_slot(&mut self, thread: usize, bank: usize) -> &mut u32 {
        let row = self.granted.get_or_default(ThreadId(thread));
        if row.len() <= bank {
            row.resize(bank + 1, 0);
        }
        &mut row[bank]
    }

    /// Marks up to `Marking-Cap` oldest unmarked requests per (thread, bank)
    /// for threads in `eligible`, honoring budget already granted this
    /// batch. Returns the number of requests marked.
    ///
    /// Runs in O(k log k) over the k unmarked requests using reusable
    /// scratch — this is called once per scheduling slot in the eslot and
    /// static batching modes, where k is almost always 0.
    fn mark(&mut self, queue: &mut [Request], now: u64) -> u64 {
        let cap = self.current_cap.unwrap_or(u32::MAX);
        let mut scratch = std::mem::take(&mut self.mark_scratch);
        scratch.clear();
        scratch.extend(queue.iter().enumerate().filter_map(|(i, r)| {
            (!r.marked && self.is_eligible(r.thread.0)).then_some((r.id.0, i))
        }));
        if scratch.is_empty() {
            self.mark_scratch = scratch;
            return 0;
        }
        // Walking candidates oldest-first and charging each against its
        // (thread, bank) budget marks exactly the per-group oldest-within-cap
        // set, since budgets of distinct groups are independent.
        scratch.sort_unstable();
        let mut marked = 0;
        for &(_, i) in &scratch {
            let r = &mut queue[i];
            let used = self.granted_slot(r.thread.0, r.addr.bank);
            if *used < cap {
                *used += 1;
                r.marked = true;
                marked += 1;
                if self.observing {
                    self.obs_events.push(Event::Marked {
                        at: now,
                        request: r.id.0,
                        thread: r.thread.0,
                        rank: r.addr.bank / self.banks_per_rank.max(1),
                        bank: r.addr.bank,
                    });
                }
            }
        }
        scratch.clear();
        self.mark_scratch = scratch;
        self.stats.requests_marked += marked;
        marked
    }

    /// Computes Rule 3 thread loads over the currently marked requests,
    /// sorted by thread id. Sort-and-scan over reusable scratch; no maps.
    fn loads(&mut self, queue: &[Request]) -> Vec<ThreadLoad> {
        let mut pairs = std::mem::take(&mut self.load_pairs);
        pairs.clear();
        pairs.extend(queue.iter().filter(|r| r.marked).map(|r| (r.thread.0, r.addr.bank)));
        pairs.sort_unstable();
        let mut loads: Vec<ThreadLoad> = Vec::new();
        let mut run = 0u32; // length of the current (thread, bank) run
        for i in 0..pairs.len() {
            run += 1;
            let last_of_bank = pairs.get(i + 1) != Some(&pairs[i]);
            if last_of_bank {
                let thread = pairs[i].0;
                if loads.last().map(|l| l.thread) != Some(thread) {
                    loads.push(ThreadLoad { thread, max_bank_load: 0, total_load: 0 });
                }
                let e = loads.last_mut().expect("pushed above");
                e.max_bank_load = e.max_bank_load.max(run);
                e.total_load += run;
                run = 0;
            }
        }
        pairs.clear();
        self.load_pairs = pairs;
        loads
    }

    fn recompute_ranks(&mut self, queue: &[Request], now: u64) {
        let loads = self.loads(queue);
        let ranked =
            compute_ranks(self.cfg.ranking, &loads, self.stats.batches_formed, &mut self.rng);
        self.ranks.clear();
        for &(thread, rank) in &ranked {
            self.ranks.insert(ThreadId(thread), rank);
        }
        if self.observing && !ranked.is_empty() {
            // `loads` is sorted by thread id; join each ranked thread with
            // its Rule 3 load figures and report in rank order.
            let mut entries: Vec<RankEntry> = ranked
                .iter()
                .map(|&(thread, rank)| {
                    let l = loads.iter().find(|l| l.thread == thread);
                    RankEntry {
                        thread,
                        rank,
                        max_bank_load: l.map_or(0, |l| l.max_bank_load),
                        total_load: l.map_or(0, |l| l.total_load),
                    }
                })
                .collect();
            entries.sort_by_key(|e| e.rank);
            self.obs_events.push(Event::RankComputed {
                at: now,
                batch: self.stats.batches_formed,
                max_total: self.cfg.ranking == Ranking::MaxTotal,
                entries,
            });
        }
    }

    fn form_batch(&mut self, queue: &mut [Request], now: u64) {
        if self.batch_open {
            let duration = now.saturating_sub(self.batch_formed_at);
            self.stats.total_batch_cycles += duration;
            self.stats.batches_completed += 1;
            if self.observing {
                self.obs_events.push(Event::BatchDrained {
                    at: now,
                    id: self.stats.batches_formed,
                    formed_at: self.batch_formed_at,
                });
            }
            self.adapt_cap(duration);
        }
        // Retire the previous batch's budget entries: only this batch's
        // threads will re-register, so the table stays O(active threads).
        self.granted.clear();
        self.eligible_batch_no = self.stats.batches_formed;
        let pre_mark_idx = self.obs_events.len();
        let marked = self.mark(queue, now);
        // Only batches that actually open count: a formation attempt that
        // marks nothing (e.g. a queue of only opportunistic requests) must
        // not advance the priority-cadence / ranking batch index or skew
        // avg_batch_size.
        if marked > 0 {
            self.stats.batches_formed += 1;
            if self.observing {
                // Summarize the Marked events just pushed and slot the
                // BatchFormed announcement in front of them, so downstream
                // sinks see the batch before its members. Sort-and-run-length
                // aggregation: O(k log k) in the k marked requests, however
                // sparse the thread ids.
                let mut marked_threads: Vec<usize> = self.obs_events[pre_mark_idx..]
                    .iter()
                    .filter_map(|e| match e {
                        Event::Marked { thread, .. } => Some(*thread),
                        _ => None,
                    })
                    .collect();
                marked_threads.sort_unstable();
                let mut per_thread: Vec<(usize, u32)> = Vec::new();
                for thread in marked_threads {
                    match per_thread.last_mut() {
                        Some((t, n)) if *t == thread => *n += 1,
                        _ => per_thread.push((thread, 1)),
                    }
                }
                self.obs_events.insert(
                    pre_mark_idx,
                    Event::BatchFormed {
                        at: now,
                        id: self.stats.batches_formed,
                        marked: marked as u32,
                        cap: self.current_cap,
                        // Static batching renews marks on a timer while older
                        // marked requests are still in flight, so batches are
                        // not exclusive there (Section 4.4).
                        exclusive: !matches!(self.cfg.batching, BatchingMode::Static { .. }),
                        per_thread,
                    },
                );
            }
        }
        self.recompute_ranks(queue, now);
        self.batch_formed_at = now;
        self.batch_open = marked > 0;
    }

    /// Adjusts the Marking-Cap toward the target batch duration (§8.3.1's
    /// adaptive-cap extension): shrink after an over-long batch, grow after
    /// a comfortably short one.
    fn adapt_cap(&mut self, last_batch_cycles: u64) {
        let Some(a) = self.cfg.adaptive_cap else { return };
        let cap = self.current_cap.unwrap_or(a.max).clamp(a.min, a.max);
        let next = if last_batch_cycles > a.target_batch_cycles {
            cap.saturating_sub(1).max(a.min)
        } else if last_batch_cycles < a.target_batch_cycles / 2 {
            (cap + 1).min(a.max)
        } else {
            cap
        };
        self.current_cap = Some(next);
    }

    /// The Marking-Cap currently in force (`None` = uncapped).
    #[must_use]
    pub fn current_cap(&self) -> Option<u32> {
        self.current_cap
    }

    fn priority_value(&self, r: &Request, view: &SchedView<'_>) -> PriorityValue {
        let level_key = self.priority_of(r.thread.0).sort_key();
        let row_hit = self.cfg.row_hit_first && view.is_row_hit(r);
        let rank = if self.cfg.ranking == Ranking::None { 0 } else { self.rank_of(r.thread) };
        PriorityValue::pack(r.marked, level_key, row_hit, rank, r.id.0)
    }
}

/// PAR-BS packs Rule 3.2's order exactly (Figure 4): marked bit, inverted
/// thread priority level, row-hit bit, inverted within-batch rank, inverted
/// request id. Mirrors [`PriorityValue::pack`]; `parbs-analyze` cross-checks
/// the two.
pub(crate) const PARBS_KEY_LAYOUT: KeyLayout = KeyLayout {
    scheduler: "PAR-BS",
    fields: &[
        KeyField { name: "marked", semantic: FieldSemantic::Marked, lo: 113, width: 1 },
        KeyField { name: "level", semantic: FieldSemantic::PriorityLevel, lo: 97, width: 16 },
        KeyField { name: "row_hit", semantic: FieldSemantic::RowHit, lo: 96, width: 1 },
        KeyField { name: "rank", semantic: FieldSemantic::Rank, lo: 64, width: 32 },
        KeyField { name: "age", semantic: FieldSemantic::Age, lo: 0, width: 64 },
    ],
};

impl MemoryScheduler for ParBsScheduler {
    fn name(&self) -> &str {
        "PAR-BS"
    }

    fn pre_schedule(&mut self, queue: &mut [Request], view: &SchedView<'_>) -> bool {
        self.banks_per_rank = view.channel.banks_per_rank();
        match self.cfg.batching {
            BatchingMode::Full => {
                if !queue.is_empty() && !queue.iter().any(|r| r.marked) {
                    // Batch formation rewrites marks and ranks even when it
                    // marks nothing (stale ranks are cleared).
                    self.form_batch(queue, view.now);
                    return true;
                }
                false
            }
            BatchingMode::EmptySlot => {
                if !queue.is_empty() && !queue.iter().any(|r| r.marked) {
                    self.form_batch(queue, view.now);
                    true
                } else if self.batch_open {
                    // Late arrivals may fill unused (thread, bank) slots.
                    self.mark(queue, view.now) > 0
                } else {
                    false
                }
            }
            BatchingMode::Static { duration } => {
                let due = match self.last_static_marking {
                    None => !queue.is_empty(),
                    Some(t) => view.now.saturating_sub(t) >= duration,
                };
                if due {
                    self.last_static_marking = Some(view.now);
                    // Static batching renews the marking budget each period;
                    // already-marked requests stay marked.
                    self.form_batch(queue, view.now);
                }
                due
            }
        }
    }

    fn priority_key(&self, req: &Request, view: &SchedView<'_>) -> u128 {
        self.priority_value(req, view).bits()
    }

    fn compare(&self, a: &Request, b: &Request, view: &SchedView<'_>) -> Ordering {
        // Larger packed priority value = scheduled first = Ordering::Less.
        self.priority_value(b, view).cmp(&self.priority_value(a, view))
    }

    fn key_layout(&self) -> Option<&'static KeyLayout> {
        Some(&PARBS_KEY_LAYOUT)
    }

    fn liveness_contract(&self) -> Option<LivenessContract> {
        // The paper's central liveness argument (Section 4.1): batching
        // with the Marking-Cap bounds any request's delay by a function of
        // the cap and the buffer size. Uncapped marking is still batch
        // marking — every queued request joins the next batch — so the
        // effective cap is "unlimited" rather than a different mechanism.
        Some(LivenessContract {
            scheduler: "PAR-BS",
            policy: LivenessPolicy::BatchMarking { cap: self.current_cap.unwrap_or(u32::MAX) },
            claim: StarvationClaim::Bounded,
        })
    }

    fn debug_summary(&self) -> String {
        format!(
            "batches={} avg_size={:.1} avg_cycles={:.0}",
            self.stats.batches_formed,
            self.stats.avg_batch_size(),
            self.stats.avg_batch_cycles()
        )
    }

    fn set_observing(&mut self, enabled: bool) {
        self.observing = enabled;
        if !enabled {
            self.obs_events.clear();
        }
    }

    fn drain_events(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.obs_events);
    }

    fn save_state(&self, w: &mut parbs_snap::SnapWriter) {
        w.put(&self.ranks);
        w.put(&self.priorities);
        w.put(&self.granted);
        w.u64(self.eligible_batch_no);
        w.u64(self.batch_formed_at);
        w.bool(self.batch_open);
        w.put(&self.current_cap);
        w.put(&self.last_static_marking);
        w.put(&self.rng.state());
        w.put(&self.stats);
        w.usize(self.banks_per_rank);
    }

    fn restore_state(
        &mut self,
        r: &mut parbs_snap::SnapReader<'_>,
    ) -> Result<(), parbs_snap::SnapError> {
        self.ranks = r.get()?;
        self.priorities = r.get()?;
        self.granted = r.get()?;
        self.eligible_batch_no = r.u64()?;
        self.batch_formed_at = r.u64()?;
        self.batch_open = r.bool()?;
        self.current_cap = r.get()?;
        self.last_static_marking = r.get()?;
        self.rng = StdRng::from_state(r.get()?);
        self.stats = r.get()?;
        self.banks_per_rank = r.usize()?;
        Ok(())
    }
}

impl parbs_snap::Snap for ParBsStats {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        w.u64(self.batches_formed);
        w.u64(self.requests_marked);
        w.u64(self.total_batch_cycles);
        w.u64(self.batches_completed);
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        Ok(ParBsStats {
            batches_formed: r.u64()?,
            requests_marked: r.u64()?,
            total_batch_cycles: r.u64()?,
            batches_completed: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parbs_dram::{Channel, LineAddr, RequestKind, TimingParams};

    fn req(id: u64, thread: usize, bank: usize, row: u64) -> Request {
        Request::new(
            id,
            ThreadId(thread),
            LineAddr { channel: 0, bank, row, col: 0 },
            RequestKind::Read,
            id,
        )
    }

    fn channel() -> Channel {
        Channel::new(8, TimingParams::ddr2_800())
    }

    fn view(ch: &Channel, now: u64) -> SchedView<'_> {
        SchedView { channel: ch, now }
    }

    #[test]
    fn batch_forms_when_no_marked_requests() {
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        let ch = channel();
        let mut q = vec![req(0, 0, 0, 1), req(1, 1, 1, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        assert!(q.iter().all(|r| r.marked), "all requests within cap get marked");
        assert_eq!(s.stats().batches_formed, 1);
    }

    #[test]
    fn no_new_batch_while_marked_requests_remain() {
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        let ch = channel();
        let mut q = vec![req(0, 0, 0, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        // A newcomer arrives while the batch is outstanding: not marked.
        q.push(req(1, 1, 1, 1));
        s.pre_schedule(&mut q, &view(&ch, 10));
        assert!(!q[1].marked, "Rule 1: new batch only when previous drained");
        assert_eq!(s.stats().batches_formed, 1);
    }

    #[test]
    fn marking_cap_limits_marks_per_thread_bank() {
        let cfg = ParBsConfig { marking_cap: Some(2), ..ParBsConfig::default() };
        let mut s = ParBsScheduler::new(cfg);
        let ch = channel();
        let mut q: Vec<Request> = (0..5).map(|i| req(i, 0, 3, i)).collect();
        s.pre_schedule(&mut q, &view(&ch, 0));
        let marked = q.iter().filter(|r| r.marked).count();
        assert_eq!(marked, 2, "Marking-Cap = 2 marks the 2 oldest");
        assert!(q[0].marked && q[1].marked);
    }

    #[test]
    fn no_cap_marks_everything() {
        let cfg = ParBsConfig { marking_cap: None, ..ParBsConfig::default() };
        let mut s = ParBsScheduler::new(cfg);
        let ch = channel();
        let mut q: Vec<Request> = (0..40).map(|i| req(i, 0, 0, i)).collect();
        s.pre_schedule(&mut q, &view(&ch, 0));
        assert!(q.iter().all(|r| r.marked));
    }

    #[test]
    fn marked_requests_beat_unmarked_row_hits() {
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        let mut ch = channel();
        // Open row 5 on bank 0 so the unmarked request is a row hit.
        ch.issue(
            &parbs_dram::Command {
                kind: parbs_dram::CommandKind::Activate,
                rank: 0,
                bank: 0,
                row: 5,
                col: 0,
                request: parbs_dram::RequestId(99),
            },
            ThreadId(0),
            0,
        );
        let mut q = vec![req(0, 0, 1, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        let unmarked_hit = req(5, 1, 0, 5);
        q.push(unmarked_hit.clone());
        assert_eq!(
            s.compare(&q[0], &unmarked_hit, &view(&ch, 100)),
            Ordering::Less,
            "BS rule dominates RH rule"
        );
    }

    #[test]
    fn max_total_ranking_prioritizes_light_threads() {
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        let ch = channel();
        // Thread 0: 1 request. Thread 1: 4 requests to one bank.
        let mut q = vec![
            req(10, 0, 0, 1),
            req(1, 1, 1, 2),
            req(2, 1, 1, 3),
            req(3, 1, 1, 4),
            req(4, 1, 1, 5),
        ];
        s.pre_schedule(&mut q, &view(&ch, 0));
        assert_eq!(s.rank_of(ThreadId(0)), 0);
        assert_eq!(s.rank_of(ThreadId(1)), 1);
        // Thread 0's *younger* request outranks thread 1's older one.
        assert_eq!(s.compare(&q[0], &q[1], &view(&ch, 0)), Ordering::Less);
    }

    #[test]
    fn opportunistic_threads_are_never_marked_and_always_last() {
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        s.set_thread_priority(ThreadId(1), ThreadPriority::Opportunistic);
        let ch = channel();
        let mut q = vec![req(0, 1, 0, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        assert!(!q[0].marked, "opportunistic requests never join a batch");
        // Against any normal thread's unmarked request it still loses.
        let normal = req(7, 0, 1, 1);
        assert_eq!(s.compare(&normal, &q[0], &view(&ch, 0)), Ordering::Less);
    }

    #[test]
    fn priority_levels_mark_every_xth_batch() {
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        s.set_thread_priority(ThreadId(1), ThreadPriority::Level(2));
        let ch = channel();
        // Batch 1 (batches_formed = 0 at decision time): level-2 thread is
        // eligible (0 % 2 == 0).
        let mut q = vec![req(0, 0, 0, 1), req(1, 1, 1, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        let first_batch_marked = q[1].marked;
        // Drain and form the next batch: now 1 % 2 == 1 → not eligible.
        for r in &mut q {
            r.marked = false;
        }
        q[0] = req(2, 0, 0, 2);
        q[1] = req(3, 1, 1, 2);
        s.pre_schedule(&mut q, &view(&ch, 1_000));
        let second_batch_marked = q[1].marked;
        assert!(
            first_batch_marked != second_batch_marked,
            "a level-2 thread joins alternate batches"
        );
        assert!(q[0].marked, "level-1 thread joins every batch");
    }

    #[test]
    fn eslot_batching_admits_latecomers_within_cap() {
        let cfg = ParBsConfig {
            batching: BatchingMode::EmptySlot,
            marking_cap: Some(2),
            ..ParBsConfig::default()
        };
        let mut s = ParBsScheduler::new(cfg);
        let ch = channel();
        let mut q = vec![req(0, 0, 0, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        assert!(q[0].marked);
        // Thread 0 used 1 of 2 slots on bank 0: a latecomer fills it.
        q.push(req(1, 0, 0, 2));
        s.pre_schedule(&mut q, &view(&ch, 50));
        assert!(q[1].marked, "eslot: latecomer fills the empty slot");
        // A third request exceeds the cap and must wait.
        q.push(req(2, 0, 0, 3));
        s.pre_schedule(&mut q, &view(&ch, 60));
        assert!(!q[2].marked, "cap exhausted for (thread 0, bank 0)");
    }

    #[test]
    fn static_batching_marks_on_a_period() {
        let cfg = ParBsConfig {
            batching: BatchingMode::Static { duration: 1_000 },
            ..ParBsConfig::default()
        };
        let mut s = ParBsScheduler::new(cfg);
        let ch = channel();
        let mut q = vec![req(0, 0, 0, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        assert!(q[0].marked);
        // Mid-period arrival stays unmarked even though the "batch" drained.
        q.push(req(1, 1, 1, 1));
        s.pre_schedule(&mut q, &view(&ch, 500));
        assert!(!q[1].marked);
        // After the period elapses it gets marked.
        s.pre_schedule(&mut q, &view(&ch, 1_000));
        assert!(q[1].marked);
    }

    #[test]
    fn no_rank_fcfs_orders_by_age_only() {
        let mut s = ParBsScheduler::new(ParBsConfig::no_rank_fcfs());
        let mut ch = channel();
        ch.issue(
            &parbs_dram::Command {
                kind: parbs_dram::CommandKind::Activate,
                rank: 0,
                bank: 0,
                row: 9,
                col: 0,
                request: parbs_dram::RequestId(99),
            },
            ThreadId(0),
            0,
        );
        let mut q = vec![req(0, 0, 1, 1), req(1, 1, 0, 9)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        // q[1] is a row hit, but FCFS-within-batch ignores hits.
        assert_eq!(s.compare(&q[0], &q[1], &view(&ch, 10)), Ordering::Less);
    }

    #[test]
    fn adaptive_cap_shrinks_after_long_batches() {
        let cfg = ParBsConfig {
            adaptive_cap: Some(crate::AdaptiveCap { min: 1, max: 8, target_batch_cycles: 500 }),
            marking_cap: Some(5),
            ..ParBsConfig::default()
        };
        let mut s = ParBsScheduler::new(cfg);
        let ch = channel();
        assert_eq!(s.current_cap(), Some(5));
        // Batch 1 forms at t=0 and "drains" slowly: next formation at 10_000.
        let mut q = vec![req(0, 0, 0, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        q[0].marked = false;
        q[0] = req(1, 0, 0, 2);
        s.pre_schedule(&mut q, &view(&ch, 10_000));
        assert_eq!(s.current_cap(), Some(4), "over-long batch shrinks the cap");
    }

    #[test]
    fn adaptive_cap_grows_after_short_batches() {
        let cfg = ParBsConfig {
            adaptive_cap: Some(crate::AdaptiveCap { min: 1, max: 8, target_batch_cycles: 5_000 }),
            marking_cap: Some(5),
            ..ParBsConfig::default()
        };
        let mut s = ParBsScheduler::new(cfg);
        let ch = channel();
        let mut q = vec![req(0, 0, 0, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        q[0].marked = false;
        q[0] = req(1, 0, 0, 2);
        s.pre_schedule(&mut q, &view(&ch, 100));
        assert_eq!(s.current_cap(), Some(6), "short batch grows the cap");
    }

    #[test]
    fn adaptive_cap_respects_bounds() {
        let cfg = ParBsConfig {
            adaptive_cap: Some(crate::AdaptiveCap { min: 2, max: 3, target_batch_cycles: 500 }),
            marking_cap: Some(2),
            ..ParBsConfig::default()
        };
        let mut s = ParBsScheduler::new(cfg);
        let ch = channel();
        let mut q = vec![req(0, 0, 0, 1)];
        let mut now = 0;
        for i in 1..6 {
            s.pre_schedule(&mut q, &view(&ch, now));
            q[0].marked = false;
            q[0] = req(i, 0, 0, i);
            now += 10_000; // every batch over-long → keeps shrinking
        }
        assert_eq!(s.current_cap(), Some(2), "cap clamps at min");
    }

    #[test]
    fn empty_batches_are_not_counted() {
        // Regression: a formation attempt that marks nothing (here: only an
        // opportunistic thread is queued) used to increment batches_formed
        // anyway, advancing the priority cadence and deflating
        // avg_batch_size with phantom batches.
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        s.set_thread_priority(ThreadId(0), ThreadPriority::Opportunistic);
        let ch = channel();
        let mut q = vec![req(0, 0, 0, 1)];
        for now in [0, 100, 200] {
            s.pre_schedule(&mut q, &view(&ch, now));
        }
        assert!(!q[0].marked);
        assert_eq!(s.stats().batches_formed, 0, "no batch opened, none counted");
        // A markable thread arrives: the next formation is batch #1 and the
        // level-2 cadence starts from it.
        q.push(req(1, 1, 1, 1));
        s.pre_schedule(&mut q, &view(&ch, 300));
        assert!(q[1].marked);
        assert_eq!(s.stats().batches_formed, 1);
        assert!((s.stats().avg_batch_size() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn observing_emits_batch_formed_before_marked_then_ranks() {
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        s.set_observing(true);
        let ch = channel();
        let mut q = vec![req(0, 0, 0, 1), req(1, 1, 1, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        let mut events = Vec::new();
        s.drain_events(&mut events);
        let names: Vec<&str> = events.iter().map(Event::name).collect();
        assert_eq!(names, ["batch_formed", "marked", "marked", "rank_computed"]);
        let Event::BatchFormed { id, marked, exclusive, ref per_thread, .. } = events[0] else {
            panic!("first event is the batch announcement");
        };
        assert_eq!((id, marked, exclusive), (1, 2, true));
        assert_eq!(per_thread, &[(0, 1), (1, 1)]);
        let Event::RankComputed { max_total, ref entries, .. } = events[3] else {
            panic!("last event carries the ranking");
        };
        assert!(max_total);
        assert_eq!(entries.len(), 2);
        assert!(entries[0].rank < entries[1].rank, "entries reported in rank order");

        // Drain the batch; the next formation reports the drain first.
        for r in &mut q {
            r.marked = false;
        }
        q[0] = req(2, 0, 0, 2);
        q[1] = req(3, 1, 1, 2);
        s.pre_schedule(&mut q, &view(&ch, 500));
        events.clear();
        s.drain_events(&mut events);
        assert_eq!(events[0].name(), "batch_drained");
        let Event::BatchDrained { at, id, formed_at } = events[0] else { unreachable!() };
        assert_eq!((at, id, formed_at), (500, 1, 0));

        // Disabling observation clears the buffer and stops emission.
        s.set_observing(false);
        for r in &mut q {
            r.marked = false;
        }
        s.pre_schedule(&mut q, &view(&ch, 1_000));
        events.clear();
        s.drain_events(&mut events);
        assert!(events.is_empty(), "no events while not observing");
    }

    #[test]
    fn batch_formed_per_thread_handles_sparse_thread_ids() {
        // Open-loop flow sources produce thread ids like 40_000 next to 0;
        // the per-thread batch summary must aggregate them in O(active)
        // without materializing anything dense, and still report ascending.
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        s.set_observing(true);
        let ch = channel();
        let mut q = vec![
            req(0, 40_000, 0, 1),
            req(1, 0, 1, 1),
            req(2, 7, 2, 1),
            req(3, 0, 3, 1),
            req(4, 40_000, 4, 1),
        ];
        s.pre_schedule(&mut q, &view(&ch, 0));
        let mut events = Vec::new();
        s.drain_events(&mut events);
        let Event::BatchFormed { marked, ref per_thread, .. } = events[0] else {
            panic!("first event is the batch announcement");
        };
        assert_eq!(marked, 5);
        assert_eq!(per_thread, &[(0, 2), (7, 1), (40_000, 2)]);
        // Ranks are likewise keyed sparsely: every queued thread got one.
        assert_ne!(s.rank_of(ThreadId(40_000)), u32::MAX);
        assert_ne!(s.rank_of(ThreadId(0)), u32::MAX);
        assert_eq!(s.rank_of(ThreadId(39_999)), u32::MAX, "untouched id holds no state");
    }

    #[test]
    fn batch_stats_accumulate() {
        let mut s = ParBsScheduler::new(ParBsConfig::default());
        let ch = channel();
        let mut q = vec![req(0, 0, 0, 1)];
        s.pre_schedule(&mut q, &view(&ch, 0));
        // Drain the batch, then a new one forms at t=2000.
        q[0].marked = false;
        q[0] = req(1, 0, 0, 2);
        s.pre_schedule(&mut q, &view(&ch, 2_000));
        assert_eq!(s.stats().batches_formed, 2);
        assert_eq!(s.stats().batches_completed, 1);
        assert!((s.stats().avg_batch_cycles() - 2_000.0).abs() < 1e-9);
        assert!(s.stats().avg_batch_size() >= 1.0);
    }
}
