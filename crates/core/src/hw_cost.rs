//! The hardware-cost model of Table 1: additional state (beyond FR-FCFS)
//! required by a PAR-BS implementation.

/// Additional storage, in bits, for each class of register in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HwCostBreakdown {
    /// Per-request state: `Marked` (1 bit), thread rank inside the packed
    /// `Priority` (log2 threads), `Thread-ID` (log2 threads) — times the
    /// request-buffer size.
    pub per_request_bits: u64,
    /// `ReqsInBankPerThread` counters: log2(buffer size) per thread per bank
    /// (the Max rule of Max-Total ranking).
    pub per_thread_per_bank_bits: u64,
    /// `ReqsPerThread` counters: log2(buffer size) per thread
    /// (the Total tie-breaker).
    pub per_thread_bits: u64,
    /// `TotalMarkedRequests` (log2 buffer size) plus the 5-bit
    /// `Marking-Cap` register.
    pub individual_bits: u64,
}

impl HwCostBreakdown {
    /// Total additional bits.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.per_request_bits
            + self.per_thread_per_bank_bits
            + self.per_thread_bits
            + self.individual_bits
    }
}

/// Computes Table 1 for an arbitrary configuration.
///
/// For the paper's example — 8-core CMP, 128-entry request buffer, 8 DRAM
/// banks — the total is **1412 bits**.
///
/// # Panics
///
/// Panics if any argument is zero.
///
/// # Examples
///
/// ```
/// let cost = parbs::parbs_extra_state_bits(8, 128, 8);
/// assert_eq!(cost.total(), 1412);
/// ```
#[must_use]
pub fn parbs_extra_state_bits(threads: u64, request_buffer: u64, banks: u64) -> HwCostBreakdown {
    assert!(threads > 0 && request_buffer > 0 && banks > 0);
    let log_threads = log2_ceil(threads);
    let log_buffer = log2_ceil(request_buffer);
    HwCostBreakdown {
        // Marked (1) + thread-rank in Priority (log2 threads) + Thread-ID.
        per_request_bits: (1 + 2 * log_threads) * request_buffer,
        per_thread_per_bank_bits: log_buffer * threads * banks,
        per_thread_bits: log_buffer * threads,
        individual_bits: log_buffer + 5,
    }
}

fn log2_ceil(v: u64) -> u64 {
    assert!(v > 0);
    64 - u64::from((v - 1).leading_zeros()).min(64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_is_1412_bits() {
        let c = parbs_extra_state_bits(8, 128, 8);
        assert_eq!(c.per_request_bits, 896, "(1 + 3 + 3) × 128");
        assert_eq!(c.per_thread_per_bank_bits, 448, "7 × 8 × 8");
        assert_eq!(c.per_thread_bits, 56, "7 × 8");
        assert_eq!(c.individual_bits, 12, "7 + 5");
        assert_eq!(c.total(), 1412);
    }

    #[test]
    fn four_core_configuration_is_cheaper() {
        let c4 = parbs_extra_state_bits(4, 128, 8);
        let c8 = parbs_extra_state_bits(8, 128, 8);
        assert!(c4.total() < c8.total());
    }

    #[test]
    fn log2_ceil_handles_non_powers() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(128), 7);
        assert_eq!(log2_ceil(129), 8);
    }

    #[test]
    #[should_panic]
    fn zero_threads_rejected() {
        let _ = parbs_extra_state_bits(0, 128, 8);
    }
}
