//! Within-batch thread ranking (Rule 3: Max-Total, and its alternatives).

use rand::rngs::StdRng;
use rand::Rng;

use crate::Ranking;

/// A thread's marked-request footprint in the batch being formed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadLoad {
    /// Thread index.
    pub thread: usize,
    /// Maximum number of marked requests to any single bank
    /// (the "max-bank-load" of Rule 3 — the shortest-job metric).
    pub max_bank_load: u32,
    /// Total marked requests across all banks.
    pub total_load: u32,
}

/// Computes the rank of each thread for one batch: position 0 = highest
/// rank (serviced first). Returns `(thread, rank)` pairs for exactly the
/// threads in `loads`.
///
/// * [`Ranking::MaxTotal`] — ascending `(max_bank_load, total_load)`,
///   remaining ties broken randomly (the paper's Rule 3);
/// * [`Ranking::TotalMax`] — ascending `(total_load, max_bank_load)`;
/// * [`Ranking::Random`] — a random permutation each batch;
/// * [`Ranking::RoundRobin`] — ranks rotate by `batch_index` across batches;
/// * [`Ranking::None`] — every thread gets rank 0 (ranking disabled).
#[must_use]
pub fn compute_ranks(
    scheme: Ranking,
    loads: &[ThreadLoad],
    batch_index: u64,
    rng: &mut StdRng,
) -> Vec<(usize, u32)> {
    let mut order: Vec<(ThreadLoad, u64)> = loads.iter().map(|&l| (l, rng.gen::<u64>())).collect();
    match scheme {
        Ranking::MaxTotal => {
            order.sort_by_key(|(l, tie)| (l.max_bank_load, l.total_load, *tie, l.thread));
        }
        Ranking::TotalMax => {
            order.sort_by_key(|(l, tie)| (l.total_load, l.max_bank_load, *tie, l.thread));
        }
        Ranking::Random => {
            order.sort_by_key(|(l, tie)| (*tie, l.thread));
        }
        Ranking::RoundRobin => {
            // Rotate over the participants *by sorted position*, not by raw
            // thread id: `(thread + batch_index) % n` collides for sparse
            // ids (e.g. threads {0, 2} with n = 2 both map to batch_index
            // % 2), which broke the rotation into a tie resolved by queue
            // order. Position indices are dense by construction, so the
            // rotation is a true permutation for any id set.
            let n = order.len().max(1) as u64;
            order.sort_by_key(|(l, _)| l.thread);
            order.rotate_left((batch_index % n) as usize);
        }
        Ranking::None => {
            return loads.iter().map(|l| (l.thread, 0)).collect();
        }
    }
    order.into_iter().enumerate().map(|(rank, (l, _))| (l.thread, rank as u32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn load(thread: usize, max: u32, total: u32) -> ThreadLoad {
        ThreadLoad { thread, max_bank_load: max, total_load: total }
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    fn rank_of(ranks: &[(usize, u32)], thread: usize) -> u32 {
        ranks.iter().find(|(t, _)| *t == thread).unwrap().1
    }

    #[test]
    fn max_total_matches_fig3_example() {
        // Figure 3: T1 max 1, T2 max 2 / total 4, T3 max 2 / total 5,
        // T4 max 5 → ranking T1 > T2 > T3 > T4.
        let loads = [load(0, 1, 3), load(1, 2, 4), load(2, 2, 5), load(3, 5, 8)];
        let ranks = compute_ranks(Ranking::MaxTotal, &loads, 0, &mut rng());
        assert_eq!(rank_of(&ranks, 0), 0);
        assert_eq!(rank_of(&ranks, 1), 1);
        assert_eq!(rank_of(&ranks, 2), 2);
        assert_eq!(rank_of(&ranks, 3), 3);
    }

    #[test]
    fn total_max_reverses_rule_order() {
        // max: a=1 b=3; total: a=9 b=3. MaxTotal ranks a first,
        // TotalMax ranks b first.
        let loads = [load(0, 1, 9), load(1, 3, 3)];
        let mt = compute_ranks(Ranking::MaxTotal, &loads, 0, &mut rng());
        let tm = compute_ranks(Ranking::TotalMax, &loads, 0, &mut rng());
        assert_eq!(rank_of(&mt, 0), 0);
        assert_eq!(rank_of(&tm, 1), 0);
    }

    #[test]
    fn round_robin_rotates_across_batches() {
        let loads = [load(0, 1, 1), load(1, 1, 1), load(2, 1, 1)];
        let b0 = compute_ranks(Ranking::RoundRobin, &loads, 0, &mut rng());
        let b1 = compute_ranks(Ranking::RoundRobin, &loads, 1, &mut rng());
        // Whoever was rank 0 in batch 0 must not be rank 0 in batch 1.
        let top0 = b0.iter().find(|(_, r)| *r == 0).unwrap().0;
        let top1 = b1.iter().find(|(_, r)| *r == 0).unwrap().0;
        assert_ne!(top0, top1);
    }

    #[test]
    fn round_robin_is_a_permutation_for_sparse_thread_ids() {
        // Regression: with participants {1, 3, 5} and the old
        // `(thread + batch_index) % n` key, every thread mapped to the same
        // residue class in some batches, collapsing the rotation into ties.
        let loads = [load(1, 1, 1), load(3, 1, 1), load(5, 1, 1)];
        let mut tops = Vec::new();
        for batch in 0..3u64 {
            let ranks = compute_ranks(Ranking::RoundRobin, &loads, batch, &mut rng());
            let mut seen: Vec<u32> = ranks.iter().map(|(_, r)| *r).collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2], "batch {batch}: ranks must be a permutation");
            tops.push(ranks.iter().find(|(_, r)| *r == 0).unwrap().0);
        }
        tops.sort_unstable();
        assert_eq!(tops, vec![1, 3, 5], "each participant leads exactly one of 3 batches");
    }

    #[test]
    fn none_gives_uniform_rank() {
        let loads = [load(0, 1, 1), load(5, 9, 9)];
        let ranks = compute_ranks(Ranking::None, &loads, 0, &mut rng());
        assert!(ranks.iter().all(|(_, r)| *r == 0));
    }

    #[test]
    fn random_is_a_permutation() {
        let loads: Vec<ThreadLoad> = (0..8).map(|t| load(t, 1, 1)).collect();
        let ranks = compute_ranks(Ranking::Random, &loads, 0, &mut rng());
        let mut seen: Vec<u32> = ranks.iter().map(|(_, r)| *r).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<u32>>());
    }
}
