//! PAR-BS configuration: batching mode, Marking-Cap, within-batch ranking,
//! and system-level thread priorities.

/// How batches are formed (Section 4.1 and the Section 4.4 alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BatchingMode {
    /// The paper's PAR-BS choice: a new batch forms only when **all** marked
    /// requests have been serviced. Gives strict starvation-freedom.
    Full,
    /// Time-based static batching: mark outstanding requests every
    /// `duration` cycles regardless of batch completion. No strict
    /// starvation-avoidance guarantee (evaluated in Fig. 12 as `st-<d>`).
    Static {
        /// Marking period in processor cycles (the paper sweeps 400-25600).
        duration: u64,
    },
    /// Empty-slot ("eslot") batching: late-arriving requests may join the
    /// current batch while their thread has unused Marking-Cap slots for
    /// the target bank.
    EmptySlot,
}

/// Within-batch thread-ranking scheme (Rule 3 and the Section 4.4 / Fig. 13
/// alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Ranking {
    /// The paper's choice: rank by lowest max-bank-load, break ties by
    /// lowest total load (shortest job first).
    MaxTotal,
    /// The reversed rule: total load first, max-bank-load as tie-breaker.
    TotalMax,
    /// Random ranks each batch (a non-shortest-job-first control).
    Random,
    /// Ranks rotate round-robin across batches.
    RoundRobin,
    /// No ranking: within a batch requests follow plain FR-FCFS (or FCFS if
    /// `row_hit_first` is also disabled). Isolates the batching component.
    None,
}

/// System-software priority of a thread (Section 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ThreadPriority {
    /// Priority level X ≥ 1: the thread's requests are marked every Xth
    /// batch; level 1 (the default) joins every batch.
    #[default]
    Level1,
    /// An explicit level (2, 3, ...). `Level(1)` behaves like `Level1`.
    Level(u8),
    /// The paper's lowest level *L*: requests are never marked and rank
    /// below all unmarked requests — purely opportunistic service.
    Opportunistic,
}

impl ThreadPriority {
    /// The marking period of this priority (`None` for opportunistic).
    #[must_use]
    pub fn period(self) -> Option<u64> {
        match self {
            ThreadPriority::Level1 => Some(1),
            ThreadPriority::Level(x) => Some(u64::from(x.max(1))),
            ThreadPriority::Opportunistic => None,
        }
    }

    /// Sort key for the within-batch PRIORITY rule: smaller = higher
    /// priority; opportunistic sorts last.
    #[must_use]
    pub fn sort_key(self) -> u16 {
        match self {
            ThreadPriority::Level1 => 1,
            ThreadPriority::Level(x) => u16::from(x.max(1)),
            ThreadPriority::Opportunistic => u16::MAX,
        }
    }
}

/// Parameters of the adaptive Marking-Cap controller — the extension the
/// paper sketches in §8.3.1 ("it is possible to improve our mechanism by
/// making the Marking-Cap adaptive"). The cap is adjusted at every batch
/// formation so the measured batch duration tracks a target: long batches
/// (which delay requests that missed the batch) shrink the cap, short ones
/// (which waste re-ordering opportunity) grow it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdaptiveCap {
    /// Smallest cap the controller may select (≥ 1).
    pub min: u32,
    /// Largest cap the controller may select.
    pub max: u32,
    /// Batch duration to aim for, in processor cycles. The paper reports
    /// ~1269-cycle batches for its Case Study II sweet spot.
    pub target_batch_cycles: u64,
}

impl Default for AdaptiveCap {
    fn default() -> Self {
        AdaptiveCap { min: 1, max: 10, target_batch_cycles: 1_200 }
    }
}

/// Full PAR-BS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParBsConfig {
    /// `Marking-Cap`: maximum marked requests per thread per bank in one
    /// batch; `None` marks everything (the paper's `no-c`). Default 5, the
    /// sweet spot of Fig. 11.
    pub marking_cap: Option<u32>,
    /// Batch-formation policy. Default [`BatchingMode::Full`].
    pub batching: BatchingMode,
    /// Within-batch thread ranking. Default [`Ranking::MaxTotal`].
    pub ranking: Ranking,
    /// Apply the row-hit-first rule within a batch (Rule 2.RH). Disabling
    /// it together with `Ranking::None` yields FCFS-within-batch.
    pub row_hit_first: bool,
    /// Adapt the Marking-Cap at run time (overrides `marking_cap` as the
    /// starting point). `None` keeps the paper's fixed cap.
    pub adaptive_cap: Option<AdaptiveCap>,
    /// Seed for random tie-breaking in the ranking rules.
    pub seed: u64,
}

impl ParBsConfig {
    /// The paper's PAR-BS: full batching, `Marking-Cap = 5`, Max-Total
    /// ranking, row-hit-first enabled.
    #[must_use]
    pub fn paper_default() -> Self {
        ParBsConfig {
            marking_cap: Some(5),
            batching: BatchingMode::Full,
            ranking: Ranking::MaxTotal,
            row_hit_first: true,
            adaptive_cap: None,
            seed: 0,
        }
    }

    /// Batching only, FR-FCFS within a batch (Fig. 13 "no-rank (FR-FCFS)").
    #[must_use]
    pub fn no_rank_frfcfs() -> Self {
        ParBsConfig { ranking: Ranking::None, ..Self::paper_default() }
    }

    /// Batching only, FCFS within a batch (Fig. 13 "no-rank (FCFS)").
    #[must_use]
    pub fn no_rank_fcfs() -> Self {
        ParBsConfig { ranking: Ranking::None, row_hit_first: false, ..Self::paper_default() }
    }
}

impl Default for ParBsConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl parbs_snap::Snap for ThreadPriority {
    fn save(&self, w: &mut parbs_snap::SnapWriter) {
        match *self {
            ThreadPriority::Level1 => w.u8(0),
            ThreadPriority::Level(x) => {
                w.u8(1);
                w.u8(x);
            }
            ThreadPriority::Opportunistic => w.u8(2),
        }
    }

    fn load(r: &mut parbs_snap::SnapReader<'_>) -> Result<Self, parbs_snap::SnapError> {
        match r.u8()? {
            0 => Ok(ThreadPriority::Level1),
            1 => Ok(ThreadPriority::Level(r.u8()?)),
            2 => Ok(ThreadPriority::Opportunistic),
            t => {
                Err(parbs_snap::SnapError::BadTag { what: "thread priority", value: u64::from(t) })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_7_2() {
        let c = ParBsConfig::default();
        assert_eq!(c.marking_cap, Some(5));
        assert_eq!(c.batching, BatchingMode::Full);
        assert_eq!(c.ranking, Ranking::MaxTotal);
        assert!(c.row_hit_first);
    }

    #[test]
    fn adaptive_cap_defaults_are_consistent() {
        let a = AdaptiveCap::default();
        assert!(a.min >= 1 && a.min <= a.max);
        assert!(a.target_batch_cycles > 0);
        assert_eq!(ParBsConfig::default().adaptive_cap, None, "paper default is fixed cap");
    }

    #[test]
    fn priority_periods() {
        assert_eq!(ThreadPriority::Level1.period(), Some(1));
        assert_eq!(ThreadPriority::Level(3).period(), Some(3));
        assert_eq!(ThreadPriority::Level(0).period(), Some(1), "level 0 clamps to 1");
        assert_eq!(ThreadPriority::Opportunistic.period(), None);
    }

    #[test]
    fn priority_sort_keys_order_correctly() {
        assert!(ThreadPriority::Level1.sort_key() < ThreadPriority::Level(2).sort_key());
        assert!(ThreadPriority::Level(8).sort_key() < ThreadPriority::Opportunistic.sort_key());
    }
}
