//! Property-based tests: PAR-BS through the full DRAM controller.
//!
//! * Protocol safety: no timing violation under random request streams for
//!   any batching mode (the checker-enabled controller panics otherwise).
//! * Starvation freedom: every accepted request completes.
//! * Ranking sanity: `compute_ranks` is a permutation consistent with the
//!   Max-Total definition.

use parbs::{compute_ranks, BatchingMode, ParBsConfig, ParBsScheduler, Ranking, ThreadLoad};
use parbs_dram::{Controller, DramConfig, LineAddr, Request, RequestKind, ThreadId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug, Clone)]
struct ReqSpec {
    thread: u8,
    bank: u8,
    row: u8,
    col: u8,
    write: bool,
    gap: u16,
}

fn req_spec() -> impl Strategy<Value = ReqSpec> {
    (0u8..4, 0u8..8, 0u8..4, 0u8..32, any::<bool>(), 0u16..150).prop_map(
        |(thread, bank, row, col, write, gap)| ReqSpec { thread, bank, row, col, write, gap },
    )
}

fn run(specs: &[ReqSpec], cfg: ParBsConfig) {
    let dram = DramConfig::default();
    let mut ctrl = Controller::with_checker(dram, Box::new(ParBsScheduler::new(cfg)));
    let mut out = Vec::new();
    let mut now = 0u64;
    let mut accepted = 0usize;
    for (i, s) in specs.iter().enumerate() {
        for _ in 0..s.gap {
            ctrl.tick(now, &mut out);
            now += 1;
        }
        let addr =
            LineAddr { channel: 0, bank: s.bank as usize, row: s.row as u64, col: s.col as u64 };
        let kind = if s.write { RequestKind::Write } else { RequestKind::Read };
        if ctrl
            .try_enqueue(Request::new(i as u64, ThreadId(s.thread as usize), addr, kind, now))
            .is_ok()
        {
            accepted += 1;
        }
    }
    out.extend(ctrl.run_to_drain(&mut now, 20_000_000));
    assert_eq!(out.len(), accepted, "starvation freedom: every accepted request completes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn full_batching_safe_and_starvation_free(specs in proptest::collection::vec(req_spec(), 1..150)) {
        run(&specs, ParBsConfig::default());
    }

    #[test]
    fn eslot_batching_safe_and_starvation_free(specs in proptest::collection::vec(req_spec(), 1..150)) {
        run(&specs, ParBsConfig { batching: BatchingMode::EmptySlot, ..ParBsConfig::default() });
    }

    #[test]
    fn static_batching_safe_and_starvation_free(
        specs in proptest::collection::vec(req_spec(), 1..150),
        duration in 400u64..26_000,
    ) {
        run(&specs, ParBsConfig {
            batching: BatchingMode::Static { duration },
            ..ParBsConfig::default()
        });
    }

    #[test]
    fn tiny_marking_cap_still_drains(specs in proptest::collection::vec(req_spec(), 1..120)) {
        run(&specs, ParBsConfig { marking_cap: Some(1), ..ParBsConfig::default() });
    }

    #[test]
    fn all_ranking_schemes_drain(
        specs in proptest::collection::vec(req_spec(), 1..100),
        scheme in prop_oneof![
            Just(Ranking::MaxTotal),
            Just(Ranking::TotalMax),
            Just(Ranking::Random),
            Just(Ranking::RoundRobin),
            Just(Ranking::None),
        ],
    ) {
        run(&specs, ParBsConfig { ranking: scheme, ..ParBsConfig::default() });
    }

    #[test]
    fn compute_ranks_is_a_consistent_permutation(
        loads in proptest::collection::vec((0u32..10, 0u32..10), 1..16),
        seed in any::<u64>(),
    ) {
        let loads: Vec<ThreadLoad> = loads
            .iter()
            .enumerate()
            .map(|(thread, &(max_extra, total_extra))| ThreadLoad {
                thread,
                max_bank_load: 1 + max_extra,
                total_load: 1 + max_extra + total_extra,
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let ranked = compute_ranks(Ranking::MaxTotal, &loads, 0, &mut rng);
        // Permutation of 0..n.
        let mut ranks: Vec<u32> = ranked.iter().map(|(_, r)| *r).collect();
        ranks.sort_unstable();
        prop_assert_eq!(ranks, (0..loads.len() as u32).collect::<Vec<_>>());
        // Max-Total consistency: if a thread has strictly smaller
        // (max, total) lexicographic key, it must rank higher.
        for (ta, ra) in &ranked {
            for (tb, rb) in &ranked {
                let la = loads.iter().find(|l| l.thread == *ta).unwrap();
                let lb = loads.iter().find(|l| l.thread == *tb).unwrap();
                let key_a = (la.max_bank_load, la.total_load);
                let key_b = (lb.max_bank_load, lb.total_load);
                if key_a < key_b {
                    prop_assert!(ra < rb, "thread {ta} ({key_a:?}) must outrank {tb} ({key_b:?})");
                }
            }
        }
    }
}
