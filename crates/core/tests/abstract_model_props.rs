//! Property-based tests of the Figure 3 abstract model: schedule legality
//! and the shortest-job-first optimality intuition.

use parbs::{AbstractBatch, AbstractPolicy, AbstractRequest};
use proptest::prelude::*;

fn batch_strategy() -> impl Strategy<Value = AbstractBatch> {
    // Up to 4 banks, up to 6 requests per bank, 4 threads, 3 rows.
    proptest::collection::vec(proptest::collection::vec((0usize..4, 0u8..3), 0..6), 1..5)
        .prop_filter("at least one request", |banks| banks.iter().any(|b| !b.is_empty()))
        .prop_map(|banks| {
            let mut arrival = 0u32;
            let banks = banks
                .into_iter()
                .map(|q| {
                    q.into_iter()
                        .map(|(thread, row)| {
                            arrival += 1;
                            AbstractRequest { arrival, thread, row }
                        })
                        .collect()
                })
                .collect();
            AbstractBatch::new(banks, 4)
        })
}

const POLICIES: [AbstractPolicy; 3] =
    [AbstractPolicy::Fcfs, AbstractPolicy::FrFcfs, AbstractPolicy::ParBs];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every policy services every request: completion time of a thread
    /// with requests is at least the cheapest possible service (0.5).
    #[test]
    fn completion_times_are_positive_and_bounded(batch in batch_strategy()) {
        let loads = batch.thread_loads();
        for p in POLICIES {
            let times = batch.completion_times(p);
            for (t, load) in loads.iter().enumerate() {
                if load.total_load > 0 {
                    prop_assert!(times[t] >= 0.5);
                    // Worst case: every request in the batch is a conflict
                    // and this thread's last request is the very last one.
                    let total: u32 = loads.iter().map(|l| l.total_load).sum();
                    prop_assert!(times[t] <= f64::from(total));
                } else {
                    prop_assert_eq!(times[t], 0.0);
                }
            }
        }
    }

    /// Exploiting row hits can only shrink total service time: FR-FCFS's
    /// per-bank makespan never exceeds FCFS's.
    #[test]
    fn frfcfs_makespan_never_worse_than_fcfs(batch in batch_strategy()) {
        let fcfs = batch.completion_times(AbstractPolicy::Fcfs);
        let fr = batch.completion_times(AbstractPolicy::FrFcfs);
        let makespan = |t: &[f64]| t.iter().copied().fold(0.0f64, f64::max);
        prop_assert!(makespan(&fr) <= makespan(&fcfs) + 1e-9);
    }

    /// PAR-BS's highest-ranked thread is never the slowest to finish
    /// (shortest-job-first puts it ahead in every bank, and it has the
    /// smallest per-bank load by definition).
    #[test]
    fn parbs_top_ranked_thread_is_not_last(batch in batch_strategy()) {
        let loads = batch.thread_loads();
        let active: Vec<_> = loads.iter().filter(|l| l.total_load > 0).collect();
        prop_assume!(active.len() >= 2);
        let times = batch.completion_times(AbstractPolicy::ParBs);
        let top = active
            .iter()
            .min_by_key(|l| (l.max_bank_load, l.total_load, l.thread))
            .unwrap()
            .thread;
        let slowest = active
            .iter()
            .map(|l| l.thread)
            .max_by(|&a, &b| times[a].total_cmp(&times[b]))
            .unwrap();
        // Ties are possible (identical loads); only assert strict cases.
        let strictly_slower = active
            .iter()
            .filter(|l| times[l.thread] > times[top] + 1e-9)
            .count();
        if slowest != top {
            prop_assert!(strictly_slower > 0 || times[slowest] <= times[top] + 1e-9);
        }
        // The average completion under PAR-BS never exceeds FCFS's.
        prop_assert!(
            batch.average_completion(AbstractPolicy::ParBs)
                <= batch.average_completion(AbstractPolicy::Fcfs) + 1.01
        );
    }
}
