//! Quantitative starvation-freedom: "the number of requests from a thread
//! scheduled before requests of another thread is strictly bounded with the
//! size of a batch" (§4.3).
//!
//! Using the controller's observability event stream, we count *overtakes*
//! of each read:
//! same-bank reads that arrived later but were serviced earlier. Under
//! PAR-BS the count is bounded by the batch size (threads × Marking-Cap per
//! bank, plus the batch being formed); under FR-FCFS a row-hit stream can
//! overtake an older conflict request without such a bound.

use std::collections::HashMap;

use parbs::{ParBsConfig, ParBsScheduler};
use parbs_baselines::FrFcfsScheduler;
use parbs_dram::{
    Controller, DramConfig, LineAddr, MemoryScheduler, Request, RequestId, RequestKind, ThreadId,
};
use parbs_obs::{downcast_sink, CmdKind, CollectSink, Event};
use proptest::prelude::*;

/// Runs a request schedule and returns, per serviced read, the number of
/// same-bank overtakes it suffered.
fn overtakes(
    mut make: impl FnMut() -> Box<dyn MemoryScheduler>,
    specs: &[(u8, u8, u8, u16)],
) -> Vec<usize> {
    let mut ctrl = Controller::with_checker(DramConfig::default(), make());
    ctrl.set_event_sink(Box::new(CollectSink::new()));
    let mut arrivals: HashMap<RequestId, (u64, usize)> = HashMap::new(); // id → (arrival, bank)
    let mut out = Vec::new();
    let mut now = 0u64;
    for (i, &(thread, bank, row, gap)) in specs.iter().enumerate() {
        for _ in 0..gap {
            ctrl.tick(now, &mut out);
            now += 1;
        }
        let addr = LineAddr { channel: 0, bank: bank as usize % 8, row: row as u64, col: 0 };
        let req =
            Request::new(i as u64, ThreadId(thread as usize % 4), addr, RequestKind::Read, now);
        if ctrl.try_enqueue(req).is_ok() {
            arrivals.insert(RequestId(i as u64), (now, bank as usize % 8));
        }
    }
    out.extend(ctrl.run_to_drain(&mut now, 50_000_000));
    // Service time = the read's column command issue time from the events.
    let sink = ctrl.take_event_sink().expect("sink attached above");
    let Ok(events) = downcast_sink::<CollectSink>(sink) else {
        panic!("the attached sink is a CollectSink");
    };
    let mut service: HashMap<RequestId, u64> = HashMap::new();
    for e in events.events() {
        if let Event::CommandIssued { at, request, kind: CmdKind::Read, .. } = *e {
            service.entry(RequestId(request)).or_insert(at);
        }
    }
    arrivals
        .iter()
        .filter_map(|(id, &(arrival, bank))| {
            let my_service = *service.get(id)?;
            let n = arrivals
                .iter()
                .filter(|(other, &(o_arrival, o_bank))| {
                    *other != id
                        && o_bank == bank
                        && o_arrival > arrival
                        && service.get(other).is_some_and(|&s| s < my_service)
                })
                .count();
            Some(n)
        })
        .collect()
}

fn spec_strategy() -> impl Strategy<Value = Vec<(u8, u8, u8, u16)>> {
    proptest::collection::vec((0u8..4, 0u8..8, 0u8..4, 0u16..120), 20..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parbs_overtakes_are_batch_bounded(specs in spec_strategy()) {
        let cap = 5u32;
        let threads = 4usize;
        let per_bank = overtakes(
            || Box::new(ParBsScheduler::new(ParBsConfig {
                marking_cap: Some(cap),
                ..ParBsConfig::default()
            })),
            &specs,
        );
        // A request waits at most: the current batch's remaining same-bank
        // marked requests (≤ threads × cap) plus one full future batch it
        // just missed (≤ threads × cap), plus scheduling slack.
        let bound = 2 * threads * cap as usize + threads;
        for &n in &per_bank {
            prop_assert!(
                n <= bound,
                "a request was overtaken {n} times; PAR-BS bound is {bound}"
            );
        }
    }
}

/// A deterministic adversarial scenario: thread 0 streams row hits at one
/// bank while thread 1's single conflict request waits. FR-FCFS lets the
/// hit stream overtake many times; PAR-BS bounds it by the Marking-Cap.
#[test]
fn hit_stream_overtakes_bounded_only_by_parbs() {
    // thread 0: 40 hits to (bank 0, row 0), arriving every 150 cycles;
    // thread 1: one request to (bank 0, row 1) arriving after the third.
    let mut specs: Vec<(u8, u8, u8, u16)> = Vec::new();
    for _ in 0..3 {
        specs.push((0, 0, 0, 150));
    }
    specs.push((1, 0, 1, 10));
    for _ in 0..37 {
        specs.push((0, 0, 0, 150));
    }
    let frfcfs: Vec<usize> = overtakes(|| Box::new(FrFcfsScheduler::new()), &specs);
    let parbs: Vec<usize> =
        overtakes(|| Box::new(ParBsScheduler::new(ParBsConfig::default())), &specs);
    let max_fr = frfcfs.iter().copied().max().unwrap_or(0);
    let max_pb = parbs.iter().copied().max().unwrap_or(0);
    assert!(max_pb < max_fr, "PAR-BS max overtakes ({max_pb}) must be below FR-FCFS's ({max_fr})");
    assert!(max_pb <= 12, "PAR-BS overtakes must stay near the cap, got {max_pb}");
}
