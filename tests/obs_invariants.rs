//! Tier-1 observability suite: the PAR-BS batching invariants hold on every
//! shipped mix, and the [`InvariantSink`] actually detects a scheduler that
//! breaks them.
//!
//! The invariants are checked *from the event stream alone* (Rule 1/2
//! marked-first service, Marking-Cap, batch exclusivity, Max-Total rank
//! order), so a clean report here means the cycle-level controller and the
//! scheduler agree about what a batch is — not just that the scheduler's
//! internal counters are self-consistent.

use parbs_dram::{
    Controller, DramConfig, LineAddr, MemoryScheduler, Request, RequestKind, SchedView, ThreadId,
};
use parbs_obs::{downcast_sink, Event, InvariantRule, InvariantSink};
use parbs_sim::{run_observed, ObserveOptions, SchedulerKind, SimConfig, TraceFormat};
use parbs_workloads::{case_study_1, case_study_2, case_study_3, random_mixes, MixSpec};

fn assert_clean(mix: &MixSpec, kind: &SchedulerKind, target: u64) {
    let cfg = SimConfig { target_instructions: target, ..SimConfig::for_cores(mix.cores()) };
    let opts = ObserveOptions { check_invariants: true, trace: None, spec: None };
    let obs = run_observed(cfg, mix, kind, &opts);
    assert_eq!(
        obs.violation_count,
        0,
        "{} on '{}' violated batching invariants:\n{}",
        kind.name(),
        mix.name,
        obs.invariants
            .iter()
            .flat_map(|r| r.violations.iter())
            .cloned()
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(!obs.invariants.is_empty(), "every channel must have been checked");
}

#[test]
fn parbs_is_clean_on_the_case_studies() {
    for mix in [case_study_1(), case_study_2(), case_study_3()] {
        assert_clean(&mix, &SchedulerKind::ParBs(Default::default()), 1_200);
    }
}

#[test]
fn parbs_is_clean_on_random_mixes() {
    for mix in random_mixes(4, 2, 7) {
        assert_clean(&mix, &SchedulerKind::ParBs(Default::default()), 1_000);
    }
}

#[test]
fn baselines_are_trivially_clean() {
    // Non-batching schedulers emit no marking events, so the batching
    // invariants hold vacuously — but the sink must still run and report.
    // BLISS and ATLAS additionally stream their own events (blacklist
    // set/clear, quantum rollover) through the same sink, which must
    // ignore them without tripping.
    let mix = case_study_1();
    for kind in [
        SchedulerKind::FrFcfs,
        SchedulerKind::Stfm,
        SchedulerKind::Bliss(Default::default()),
        SchedulerKind::Atlas(Default::default()),
    ] {
        assert_clean(&mix, &kind, 1_000);
    }
}

/// A deliberately broken batching scheduler: it marks every even-id request
/// (announcing the batch like PAR-BS does) but then *prioritizes unmarked
/// requests*, inverting Rule 2. The invariant checker must catch the
/// marked-first violation from the controller's event stream.
#[derive(Default)]
struct RuleTwoInverted {
    observing: bool,
    events: Vec<Event>,
}

impl MemoryScheduler for RuleTwoInverted {
    fn name(&self) -> &str {
        "broken"
    }

    fn pre_schedule(&mut self, queue: &mut [Request], view: &SchedView<'_>) -> bool {
        let announce_at = self.events.len();
        let mut marked = 0u32;
        for r in queue.iter_mut() {
            if !r.marked && r.id.0 % 2 == 0 {
                r.marked = true;
                marked += 1;
                if self.observing {
                    self.events.push(Event::Marked {
                        at: view.now,
                        request: r.id.0,
                        thread: r.thread.0,
                        rank: r.addr.bank / view.channel.banks_per_rank(),
                        bank: r.addr.bank,
                    });
                }
            }
        }
        if marked > 0 && self.observing {
            self.events.insert(
                announce_at,
                Event::BatchFormed {
                    at: view.now,
                    id: 1,
                    marked,
                    cap: None,
                    exclusive: false,
                    per_thread: Vec::new(),
                },
            );
        }
        marked > 0
    }

    fn priority_key(&self, req: &Request, _view: &SchedView<'_>) -> u128 {
        // Higher key = served first: unmarked requests win, ties oldest-first.
        (u128::from(!req.marked) << 64) | u128::from(u64::MAX - req.id.0)
    }

    fn set_observing(&mut self, enabled: bool) {
        self.observing = enabled;
        if !enabled {
            self.events.clear();
        }
    }

    fn drain_events(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.events);
    }
}

#[test]
fn invariant_sink_catches_a_rule_two_violation() {
    let mut ctrl = Controller::new(DramConfig::default(), Box::new(RuleTwoInverted::default()));
    ctrl.set_event_sink(Box::new(InvariantSink::new()));
    // Two reads to the same (bank, row): id 0 gets marked, id 1 does not,
    // and the broken priority serves id 1 first.
    for id in 0..2u64 {
        let addr = LineAddr { channel: 0, bank: 0, row: 5, col: id };
        ctrl.try_enqueue(Request::new(id, ThreadId(id as usize), addr, RequestKind::Read, 0))
            .unwrap();
    }
    let mut now = 0;
    let done = ctrl.run_to_drain(&mut now, 1_000_000);
    assert_eq!(done.len(), 2);
    let sink = ctrl.take_event_sink().expect("sink attached above");
    let Ok(sink) = downcast_sink::<InvariantSink>(sink) else {
        panic!("the attached sink is an InvariantSink");
    };
    assert!(
        sink.violations().iter().any(|v| v.rule == InvariantRule::MarkedFirst),
        "expected a marked-first violation, got: {:?}",
        sink.violations()
    );
    let report = sink.violations()[0].to_string();
    assert!(report.contains("marked-first"), "{report}");
    assert!(!sink.violations()[0].window.is_empty(), "report carries an event window");
}

#[test]
fn a_well_behaved_parbs_controller_run_stays_clean_at_the_dram_level() {
    use parbs::{ParBsConfig, ParBsScheduler};
    let mut ctrl = Controller::new(
        DramConfig::default(),
        Box::new(ParBsScheduler::new(ParBsConfig::default())),
    );
    ctrl.set_event_sink(Box::new(InvariantSink::new()));
    // An adversarial-ish shape: two threads interleaved on the same bank
    // plus a third spread across banks.
    let mut id = 0u64;
    for round in 0..6u64 {
        for (thread, bank, row) in [(0usize, 0usize, 1u64), (1, 0, 2), (2, round as usize % 8, 3)] {
            let addr = LineAddr { channel: 0, bank, row, col: id };
            ctrl.try_enqueue(Request::new(id, ThreadId(thread), addr, RequestKind::Read, 0))
                .unwrap();
            id += 1;
        }
    }
    let mut now = 0;
    let done = ctrl.run_to_drain(&mut now, 1_000_000);
    assert_eq!(done.len(), 18);
    let sink = ctrl.take_event_sink().expect("sink attached above");
    let Ok(sink) = downcast_sink::<InvariantSink>(sink) else {
        panic!("the attached sink is an InvariantSink");
    };
    assert!(sink.ok(), "violations: {:?}", sink.violations());
    assert!(
        sink.summary().contains("0 violation"),
        "summary mentions the clean outcome: {}",
        sink.summary()
    );
}

#[test]
fn jsonl_and_chrome_payloads_come_from_the_same_run_shape() {
    // Sanity: both formats serialize without error on a real mix and the
    // chrome payload is JSON-shaped with per-bank and per-thread tracks.
    let mix = case_study_1();
    let cfg = SimConfig { target_instructions: 800, ..SimConfig::for_cores(mix.cores()) };
    let opts =
        ObserveOptions { check_invariants: false, trace: Some(TraceFormat::Chrome), spec: None };
    let obs = run_observed(cfg, &mix, &SchedulerKind::ParBs(Default::default()), &opts);
    let chrome = obs.trace.expect("chrome payload");
    assert!(chrome.contains("\"bank 0\"") && chrome.contains("\"thread 0\""), "named tracks");
    assert!(chrome.contains("process_name"), "track metadata present");
}
