//! QoS integration: thread priorities, opportunistic service, and
//! NFQ/STFM weights (Section 5 / Fig. 14 behaviours).

use parbs::{ParBsConfig, ThreadPriority};
use parbs_sim::{experiments, EvalOverrides, Harness, SchedulerKind, SimConfig};
use parbs_workloads::MixSpec;

fn harness(target: u64) -> Harness {
    Harness::new(SimConfig { target_instructions: target, ..SimConfig::for_cores(4) })
}

#[test]
fn opportunistic_threads_yield_to_the_important_one() {
    let h = harness(6_000);
    let evals = h.run_plan(&experiments::priority_opportunistic_plan(), 2);
    let parbs = evals.iter().find(|e| e.scheduler == "PAR-BS").unwrap();
    // Thread 2 (omnetpp) is the important one.
    let omnetpp = parbs.metrics.slowdowns[2];
    for (i, sl) in parbs.metrics.slowdowns.iter().enumerate() {
        if i != 2 {
            assert!(
                omnetpp < *sl,
                "important thread ({omnetpp:.2}) must be less slowed than opportunistic {i} ({sl:.2})"
            );
        }
    }
    // And it should be barely slowed at all.
    assert!(omnetpp < 2.0, "high-priority omnetpp slowdown {omnetpp:.2}");
}

#[test]
fn parbs_priority_levels_order_service() {
    // Four identical lbm copies with priorities 1, 1, 2, 8: the level-8
    // thread must be the most slowed, the level-1 threads the least.
    let h = harness(6_000);
    let evals = h.run_plan(&experiments::priority_weighted_plan(), 2);
    let parbs = evals.iter().find(|e| e.scheduler == "PAR-BS").unwrap();
    let sl = &parbs.metrics.slowdowns;
    assert!(sl[3] > sl[0], "level-8 thread ({}) vs level-1 ({})", sl[3], sl[0]);
    assert!(sl[3] > sl[1]);
    assert!(sl[3] > sl[2], "level-8 ({}) vs level-2 ({})", sl[3], sl[2]);
}

#[test]
fn nfq_weights_shift_bandwidth() {
    // Same mix, one thread with 8x the share: it must be less slowed than
    // the weight-1 copies.
    let h = harness(6_000);
    let mix = MixSpec::from_names("lbm4", &["lbm", "lbm", "lbm", "lbm"]);
    let shares = EvalOverrides::weighted(vec![8.0, 1.0, 1.0, 1.0]);
    let e = h.evaluate_mix_with(&mix, &SchedulerKind::Nfq, &shares);
    let sl = &e.metrics.slowdowns;
    assert!(
        sl[0] < sl[1] && sl[0] < sl[2] && sl[0] < sl[3],
        "weight-8 thread should be least slowed: {sl:?}"
    );
}

#[test]
fn stfm_weights_shift_priority() {
    let h = harness(6_000);
    let mix = MixSpec::from_names("lbm4", &["lbm", "lbm", "lbm", "lbm"]);
    let shares = EvalOverrides::weighted(vec![8.0, 1.0, 1.0, 1.0]);
    let e = h.evaluate_mix_with(&mix, &SchedulerKind::Stfm, &shares);
    let sl = &e.metrics.slowdowns;
    assert!(
        sl[0] < sl[1] && sl[0] < sl[2] && sl[0] < sl[3],
        "weight-8 thread should be least slowed: {sl:?}"
    );
}

#[test]
fn priority_levels_do_not_break_starvation_freedom() {
    // Even the level-8 thread finishes its run (no livelock) under
    // protocol checking.
    let cfg = SimConfig {
        target_instructions: 3_000,
        check_protocol: true,
        thread_priorities: vec![
            ThreadPriority::Level1,
            ThreadPriority::Level1,
            ThreadPriority::Level(2),
            ThreadPriority::Level(8),
        ],
        ..SimConfig::for_cores(4)
    };
    let h = Harness::new(cfg);
    let mix = MixSpec::from_names("lbm4", &["lbm", "lbm", "lbm", "lbm"]);
    let r =
        h.run_shared(&mix, &SchedulerKind::ParBs(ParBsConfig::default()), &EvalOverrides::none());
    assert!(!r.timed_out, "every thread must finish");
    for t in &r.threads {
        assert!(t.instructions >= 3_000);
    }
}
