//! Cross-crate integration: full-system runs with protocol checking,
//! metric sanity, and determinism.

use parbs_sim::{experiments, Harness, SchedulerKind, SimConfig};
use parbs_workloads::{case_study_1, random_mixes};

fn checked_cfg(cores: usize, target: u64) -> SimConfig {
    SimConfig { target_instructions: target, check_protocol: true, ..SimConfig::for_cores(cores) }
}

#[test]
fn all_five_schedulers_run_protocol_clean() {
    // `check_protocol` panics on any DRAM timing violation.
    for kind in SchedulerKind::paper_five() {
        let harness = Harness::new(checked_cfg(4, 2_000));
        let eval = harness.evaluate_mix(&case_study_1(), &kind);
        assert_eq!(eval.metrics.slowdowns.len(), 4, "{}", kind.name());
        assert!(eval.metrics.unfairness >= 1.0, "{}", kind.name());
        assert!(
            eval.metrics.weighted_speedup > 0.0 && eval.metrics.weighted_speedup <= 4.0 + 1e-9,
            "{}: ws = {}",
            kind.name(),
            eval.metrics.weighted_speedup
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let harness = Harness::new(checked_cfg(4, 2_000));
        harness.evaluate_mix(&case_study_1(), &SchedulerKind::ParBs(Default::default()))
    };
    let a = run();
    let b = run();
    assert_eq!(a.metrics.slowdowns, b.metrics.slowdowns);
    assert_eq!(a.worst_case_latency, b.worst_case_latency);
}

#[test]
fn slowdowns_exceed_one_under_heavy_sharing() {
    // Four memory-intensive threads on one channel: every thread must be
    // measurably slowed relative to running alone.
    let harness = Harness::new(checked_cfg(4, 3_000));
    let eval = harness.evaluate_mix(&case_study_1(), &SchedulerKind::FrFcfs);
    for (name, s) in eval.thread_names.iter().zip(&eval.metrics.slowdowns) {
        assert!(*s > 1.2, "{name} slowdown {s} suspiciously low");
    }
}

#[test]
fn eight_and_sixteen_core_systems_run() {
    for cores in [8usize, 16] {
        let harness = Harness::new(checked_cfg(cores, 1_000));
        let mix = &random_mixes(cores, 1, 7)[0];
        let eval = harness.evaluate_mix(mix, &SchedulerKind::ParBs(Default::default()));
        assert_eq!(eval.metrics.slowdowns.len(), cores);
        assert!(eval.metrics.weighted_speedup > 0.0);
    }
}

#[test]
fn alone_cache_consistent_across_equal_queries() {
    let harness = Harness::new(checked_cfg(4, 2_000));
    let mix = case_study_1();
    let a = harness.evaluate_mix(&mix, &SchedulerKind::Stfm);
    let b = harness.evaluate_mix(&mix, &SchedulerKind::Stfm);
    assert_eq!(a.metrics.slowdowns, b.metrics.slowdowns);
}

#[test]
fn micro_experiments_have_expected_direction() {
    let (overlapped, serialized) = experiments::micro::fig1_overlap();
    assert!(overlapped < serialized);
    let (conv, parbs) = experiments::micro::fig2_stall_times();
    assert!(parbs[0] + parbs[1] < conv[0] + conv[1]);
}
