//! End-to-end equivalence of the controller's two selection paths: the
//! cached-priority-key hot path must reproduce, command for command and
//! cycle for cycle, the retired full-queue comparator sort it replaced —
//! under every shipped scheduler, with the DRAM protocol checker enabled.
//!
//! The workload is a fig08-style 4-core mix: four threads with different
//! intensities and row localities, reads and writes, bursty arrivals —
//! enough to exercise batch formation (PAR-BS), capture-window expiry
//! (NFQ/STFQ), fairness-mode switches (STFM, via synthetic stall reports),
//! write drains, and refresh.

use parbs::{BatchingMode, ParBsConfig, ParBsScheduler, ThreadPriority};
use parbs_baselines::{
    AtlasScheduler, BlissScheduler, FrFcfsScheduler, NfqScheduler, StfmScheduler,
};
use parbs_dram::{
    Command, CommandTraceSink, Completion, Controller, DramConfig, FcfsScheduler, LineAddr,
    MemoryScheduler, Request, RequestKind, ThreadId,
};
use parbs_obs::downcast_sink;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scheduled arrival of the synthetic mix.
struct Arrival {
    at: u64,
    req: Request,
}

/// A deterministic 4-thread mix: thread 0 is intensive with high row
/// locality, thread 1 is intensive with random rows (mcf-like), thread 2 is
/// moderate, thread 3 is light and bursty. ~15% writes.
fn mix(seed: u64, count: u64) -> Vec<Arrival> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals = Vec::new();
    let mut now = 0u64;
    let mut hot_rows = [0u64; 4];
    for id in 0..count {
        let thread = match rng.gen_range(0u32..10) {
            0..=3 => 0usize,
            4..=6 => 1,
            7..=8 => 2,
            _ => 3,
        };
        // Per-thread arrival pacing; thread 3 arrives in far-apart bursts.
        now += match thread {
            0 | 1 => rng.gen_range(0u64..6),
            2 => rng.gen_range(0u64..20),
            _ => {
                if rng.gen_bool(0.2) {
                    rng.gen_range(100u64..400)
                } else {
                    0
                }
            }
        };
        // Row locality: thread 0 mostly re-hits its current row; thread 1
        // almost never does.
        let hit_chance = [0.85, 0.05, 0.5, 0.5][thread];
        if !rng.gen_bool(hit_chance) {
            hot_rows[thread] = rng.gen_range(0u64..32);
        }
        let kind = if rng.gen_bool(0.15) { RequestKind::Write } else { RequestKind::Read };
        let addr = LineAddr {
            channel: 0,
            bank: rng.gen_range(0usize..8),
            row: hot_rows[thread],
            col: rng.gen_range(0u64..64),
        };
        arrivals
            .push(Arrival { at: now, req: Request::new(id, ThreadId(thread), addr, kind, now) });
    }
    arrivals
}

/// Drives one controller through the mix and returns its full command trace.
/// Enqueues retry while the request buffer is full; synthetic per-thread
/// stall cycles are reported every 1000 cycles to exercise STFM's
/// fairness-mode switching.
fn run(mut ctrl: Controller, arrivals: &[Arrival]) -> (Vec<(u64, Command)>, usize) {
    ctrl.set_event_sink(Box::new(CommandTraceSink::new()));
    let mut out: Vec<Completion> = Vec::new();
    let mut completed = 0usize;
    let mut now = 0u64;
    let mut next = 0usize;
    let mut pending: Option<Request> = None;
    let stalls = [[37u64, 0, 0, 0], [0, 911, 13, 0], [5, 5, 5, 450]];
    while next < arrivals.len() || pending.is_some() {
        if now.is_multiple_of(1_000) && now > 0 {
            let s = stalls[(now / 1_000) as usize % stalls.len()];
            ctrl.report_stall_cycles(&s, now);
        }
        if let Some(req) = pending.take() {
            if ctrl.try_enqueue(req.clone()).is_err() {
                pending = Some(req);
            }
        }
        while pending.is_none() && next < arrivals.len() && arrivals[next].at <= now {
            let req = arrivals[next].req.clone();
            if ctrl.try_enqueue(req.clone()).is_err() {
                pending = Some(req);
            }
            next += 1;
        }
        ctrl.tick(now, &mut out);
        completed += out.len();
        out.clear();
        now += 1;
    }
    let done = ctrl.run_to_drain(&mut now, 10_000_000);
    completed += done.len();
    let sink = ctrl.take_event_sink().expect("sink attached above");
    let Ok(sink) = downcast_sink::<CommandTraceSink>(sink) else {
        panic!("the attached sink is a CommandTraceSink");
    };
    (sink.into_trace(), completed)
}

/// Runs the same mix through the keyed and comparator paths and asserts the
/// traces are identical.
fn assert_paths_agree(name: &str, make: &dyn Fn() -> Box<dyn MemoryScheduler>) {
    let arrivals = mix(0xC0FFEE, 600);
    let cfg = DramConfig::default();
    let keyed = Controller::with_checker(cfg.clone(), make());
    let mut comparator = Controller::with_checker(cfg, make());
    comparator.set_comparator_path(true);
    let (trace_k, done_k) = run(keyed, &arrivals);
    let (trace_c, done_c) = run(comparator, &arrivals);
    assert_eq!(done_k, arrivals.len(), "{name}: keyed path must drain the whole mix");
    assert_eq!(done_c, arrivals.len(), "{name}: comparator path must drain the whole mix");
    assert_eq!(trace_k.len(), trace_c.len(), "{name}: command counts differ");
    for (i, (k, c)) in trace_k.iter().zip(&trace_c).enumerate() {
        assert_eq!(k, c, "{name}: traces diverge at command {i}");
    }
}

#[test]
fn fcfs_keyed_path_matches_comparator() {
    assert_paths_agree("FCFS", &|| Box::new(FcfsScheduler::new()));
}

#[test]
fn frfcfs_keyed_path_matches_comparator() {
    assert_paths_agree("FR-FCFS", &|| Box::new(FrFcfsScheduler::new()));
}

#[test]
fn parbs_keyed_path_matches_comparator() {
    assert_paths_agree("PAR-BS", &|| Box::new(ParBsScheduler::new(ParBsConfig::default())));
}

#[test]
fn parbs_eslot_with_priorities_keyed_path_matches_comparator() {
    // Empty-slot batching re-marks every slot and the priority levels give
    // threads different marking cadences — the hardest key-staleness case.
    assert_paths_agree("PAR-BS/eslot", &|| {
        let cfg = ParBsConfig {
            batching: BatchingMode::EmptySlot,
            marking_cap: Some(3),
            ..ParBsConfig::default()
        };
        let mut s = ParBsScheduler::new(cfg);
        s.set_thread_priority(ThreadId(2), ThreadPriority::Level(2));
        s.set_thread_priority(ThreadId(3), ThreadPriority::Opportunistic);
        Box::new(s)
    });
}

#[test]
fn nfq_keyed_path_matches_comparator() {
    assert_paths_agree("NFQ", &|| Box::new(NfqScheduler::new()));
}

#[test]
fn stfq_keyed_path_matches_comparator() {
    assert_paths_agree("STFQ", &|| Box::new(NfqScheduler::stfq()));
}

#[test]
fn stfm_keyed_path_matches_comparator() {
    assert_paths_agree("STFM", &|| Box::new(StfmScheduler::new()));
}

#[test]
fn bliss_keyed_path_matches_comparator() {
    // Blacklist state mutates on column commands (between pre_schedules),
    // so this exercises the dirty-flag staleness reporting.
    assert_paths_agree("BLISS", &|| Box::new(BlissScheduler::new()));
}

#[test]
fn atlas_keyed_path_matches_comparator() {
    // Quantum rollovers re-rank all threads mid-run; the keyed path must
    // pick the rank changes up on the same cycle the comparator does.
    assert_paths_agree("ATLAS", &|| Box::new(AtlasScheduler::new()));
}
