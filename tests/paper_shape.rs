//! The paper's qualitative results, as executable assertions. Absolute
//! numbers differ from the paper (scaled-down synthetic substrate), but
//! these orderings are the claims the reproduction stands on.

use parbs::{AbstractBatch, AbstractPolicy};
use parbs_sim::{experiments, Harness, SchedulerKind, SimConfig};
use parbs_workloads::case_study_1;

fn harness(target: u64) -> Harness {
    Harness::new(SimConfig { target_instructions: target, ..SimConfig::for_cores(4) })
}

#[test]
fn figure3_numbers_are_exact() {
    let b = AbstractBatch::figure3_example();
    assert_eq!(b.completion_times(AbstractPolicy::Fcfs), vec![4.0, 4.0, 5.0, 7.0]);
    assert_eq!(b.completion_times(AbstractPolicy::FrFcfs), vec![5.5, 3.0, 4.5, 4.5]);
    assert_eq!(b.completion_times(AbstractPolicy::ParBs), vec![1.0, 2.0, 4.0, 5.5]);
}

#[test]
fn table1_hardware_cost_is_exact() {
    assert_eq!(parbs::parbs_extra_state_bits(8, 128, 8).total(), 1412);
}

#[test]
fn parbs_beats_frfcfs_on_throughput_and_fairness_in_cs1() {
    let h = harness(8_000);
    let evals = h.run_plan(&experiments::compare_plan(&case_study_1()), 2);
    let by = |name: &str| evals.iter().find(|e| e.scheduler == name).unwrap();
    let frfcfs = by("FR-FCFS");
    let parbs = by("PAR-BS");
    assert!(
        parbs.metrics.weighted_speedup > frfcfs.metrics.weighted_speedup,
        "PAR-BS ws {} must beat FR-FCFS {}",
        parbs.metrics.weighted_speedup,
        frfcfs.metrics.weighted_speedup
    );
    assert!(
        parbs.metrics.unfairness < frfcfs.metrics.unfairness,
        "PAR-BS unfairness {} must beat FR-FCFS {}",
        parbs.metrics.unfairness,
        frfcfs.metrics.unfairness
    );
    assert!(parbs.metrics.ast_per_req < frfcfs.metrics.ast_per_req);
}

#[test]
fn frfcfs_favors_the_high_locality_intensive_thread() {
    // Fig. 5: libquantum (98% row-buffer locality, intensive) is the least
    // slowed thread under FR-FCFS.
    let h = harness(8_000);
    let eval = h.evaluate_mix(&case_study_1(), &SchedulerKind::FrFcfs);
    let lib = eval.metrics.slowdowns[0];
    for (i, sl) in eval.metrics.slowdowns.iter().enumerate().skip(1) {
        assert!(lib < *sl, "libquantum ({lib:.2}) should be least slowed; thread {i} = {sl:.2}");
    }
}

#[test]
fn parbs_preserves_mcf_bank_parallelism_better_than_stfm() {
    // §8.1.1: STFM is parallelism-unaware and serializes mcf's concurrent
    // accesses; PAR-BS keeps mcf's AST/req lower.
    let h = harness(8_000);
    let stfm = h.evaluate_mix(&case_study_1(), &SchedulerKind::Stfm);
    let parbs = h.evaluate_mix(&case_study_1(), &SchedulerKind::ParBs(Default::default()));
    let mcf = 1; // thread index in CS1
    assert!(
        parbs.shared[mcf].ast_per_req() < stfm.shared[mcf].ast_per_req(),
        "PAR-BS mcf AST {} vs STFM {}",
        parbs.shared[mcf].ast_per_req(),
        stfm.shared[mcf].ast_per_req()
    );
}

#[test]
fn batching_bounds_worst_case_latency_vs_stfm() {
    // Table 4: STFM can delay individual requests for a long time to enforce
    // fairness; PAR-BS's batch bound keeps worst-case latency lower.
    let h = harness(8_000);
    let stfm = h.evaluate_mix(&case_study_1(), &SchedulerKind::Stfm);
    let parbs = h.evaluate_mix(&case_study_1(), &SchedulerKind::ParBs(Default::default()));
    assert!(
        parbs.worst_case_latency < stfm.worst_case_latency,
        "PAR-BS wc {} vs STFM wc {}",
        parbs.worst_case_latency,
        stfm.worst_case_latency
    );
}

#[test]
fn shortest_job_first_ranking_beats_random_within_batch() {
    // Fig. 13: Max-Total ranking yields better average throughput than
    // random ranking over a handful of mixes.
    let h = harness(4_000);
    let mixes = parbs_workloads::random_mixes(4, 6, 9);
    let rows = experiments::ranking_plan(&mixes).run(&h, 2);
    let ws =
        |label: &str| rows.iter().find(|r| r.label == label).unwrap().summary().weighted_speedup;
    assert!(
        ws("max-total(PAR-BS)") > ws("random"),
        "max-total {} vs random {}",
        ws("max-total(PAR-BS)"),
        ws("random")
    );
}

#[test]
fn marking_cap_controls_unfairness() {
    // Fig. 11: a very large cap (no-c) is less fair than a small cap. The
    // effect needs runs long enough for batch-level fairness to dominate
    // warmup noise, hence the larger instruction target than the other
    // sweeps here.
    let h = harness(6_000);
    let mixes = parbs_workloads::random_mixes(4, 8, 9);
    let rows = experiments::marking_cap_plan(&mixes, &[Some(1), None]).run(&h, 2);
    let unf = |label: &str| rows.iter().find(|r| r.label == label).unwrap().summary().unfairness;
    assert!(
        unf("c=1") < unf("no-c"),
        "c=1 {} should be fairer than no-c {}",
        unf("c=1"),
        unf("no-c")
    );
}
