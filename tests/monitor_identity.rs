//! Verdict identity: the declarative `prelude::invariants()` monitor spec
//! reaches the same pass/violation verdicts — including the offending cycle
//! and thread — as the hand-written [`InvariantSink`], online over live
//! controller event streams and offline over a JSONL replay of the same
//! trace.
//!
//! Pass-side identity runs the full seven-scheduler zoo over the paper case
//! studies and random mixes; violation-side identity uses a deliberately
//! broken batching scheduler (Rule 2 inverted) so both checkers have real
//! violations to agree on, triple by triple.

use parbs_dram::{
    Controller, DramConfig, LineAddr, MemoryScheduler, Request, RequestKind, SchedView, ThreadId,
};
use parbs_monitor::{prelude, replay_jsonl, Spec};
use parbs_obs::{downcast_sink, Event, FanoutSink, InvariantSink, JsonlSink};
use parbs_sim::{run_observed, ObserveOptions, SchedulerKind, SimConfig, TraceFormat};
use parbs_workloads::{case_study_1, case_study_2, case_study_3, random_mixes, MixSpec};

/// The identity of one verdict: (rule/trigger name, offending cycle,
/// offending thread). Both checkers reduce to this triple.
type Verdict = (String, u64, Option<usize>);

fn monitor_verdicts(mon: &parbs_monitor::Monitor) -> Vec<Verdict> {
    let mut v: Vec<Verdict> =
        mon.alarms().iter().map(|a| (a.name.clone(), a.at, a.thread)).collect();
    v.sort();
    v
}

fn sink_verdicts(sink: &InvariantSink) -> Vec<Verdict> {
    let mut v: Vec<Verdict> =
        sink.violations().iter().map(|x| (x.rule.name().to_owned(), x.at, x.thread)).collect();
    v.sort();
    v
}

fn assert_identical_and_clean(mix: &MixSpec, kind: &SchedulerKind, spec: &Spec) {
    let cfg = SimConfig { target_instructions: 800, ..SimConfig::for_cores(mix.cores()) };
    let opts = ObserveOptions {
        check_invariants: true,
        trace: Some(TraceFormat::Jsonl),
        spec: Some(spec.clone()),
    };
    let obs = run_observed(cfg, mix, kind, &opts);
    let label = format!("{} on '{}'", kind.name(), mix.name);
    // Online: the sink and the monitor must reach the same (clean) verdict.
    assert_eq!(obs.violation_count, 0, "{label}: sink violations: {:?}", obs.invariants);
    assert_eq!(obs.alarm_count, 0, "{label}: monitor alarms: {:?}", obs.monitors);
    assert_eq!(obs.invariants.len(), obs.monitors.len(), "{label}: both cover every channel");
    // Offline: replaying channel 0's JSONL trace must reproduce channel 0's
    // online verdict event for event.
    let trace = obs.trace.expect("jsonl trace requested");
    let replayed = replay_jsonl(spec, &trace).expect("round-trip trace replays");
    let ch0 = obs.monitors.iter().find(|m| m.channel == 0).expect("channel 0 monitored");
    assert_eq!(replayed.events, ch0.events, "{label}: replay saw the online event stream");
    assert_eq!(monitor_verdicts(&replayed), Vec::<Verdict>::new(), "{label}: replay is clean");
}

#[test]
fn zoo_verdicts_match_on_the_case_studies() {
    let spec = prelude::invariants();
    for kind in SchedulerKind::zoo_seven() {
        for mix in [case_study_1(), case_study_2(), case_study_3()] {
            assert_identical_and_clean(&mix, &kind, &spec);
        }
    }
}

#[test]
fn zoo_verdicts_match_on_random_mixes() {
    let spec = prelude::invariants();
    for kind in SchedulerKind::zoo_seven() {
        for mix in random_mixes(4, 2, 13) {
            assert_identical_and_clean(&mix, &kind, &spec);
        }
    }
}

#[test]
fn qos_spec_runs_clean_across_the_zoo() {
    // The QoS prelude is advisory (warn-only); it must run everywhere
    // without error-severity alarms and replay to the same trigger counts.
    let spec = prelude::qos();
    let mix = case_study_1();
    for kind in SchedulerKind::zoo_seven() {
        let cfg = SimConfig { target_instructions: 800, ..SimConfig::for_cores(mix.cores()) };
        let opts = ObserveOptions {
            check_invariants: false,
            trace: Some(TraceFormat::Jsonl),
            spec: Some(spec.clone()),
        };
        let obs = run_observed(cfg, &mix, &kind, &opts);
        assert!(obs.monitors.iter().all(|m| m.ok), "{}: {:?}", kind.name(), obs.monitors);
        let replayed = replay_jsonl(&spec, &obs.trace.expect("jsonl trace")).expect("replays");
        let ch0 = obs.monitors.iter().find(|m| m.channel == 0).expect("channel 0");
        let online: Vec<(String, parbs_monitor::Severity, u64)> = ch0.trigger_counts.clone();
        let offline: Vec<(String, parbs_monitor::Severity, u64)> =
            replayed.trigger_counts().into_iter().map(|(n, s, k)| (n.to_owned(), s, k)).collect();
        assert_eq!(online, offline, "{}: trigger counts replay identically", kind.name());
    }
}

/// A deliberately broken batching scheduler: it marks every even-id request
/// (announcing the batch like PAR-BS does) but then *prioritizes unmarked
/// requests*, inverting Rule 2 — same shape as the detector test in
/// `obs_invariants.rs`, reused here so both checkers see real violations.
#[derive(Default)]
struct RuleTwoInverted {
    observing: bool,
    events: Vec<Event>,
}

impl MemoryScheduler for RuleTwoInverted {
    fn name(&self) -> &str {
        "broken"
    }

    fn pre_schedule(&mut self, queue: &mut [Request], view: &SchedView<'_>) -> bool {
        let announce_at = self.events.len();
        let mut marked = 0u32;
        for r in queue.iter_mut() {
            if !r.marked && r.id.0 % 2 == 0 {
                r.marked = true;
                marked += 1;
                if self.observing {
                    self.events.push(Event::Marked {
                        at: view.now,
                        request: r.id.0,
                        thread: r.thread.0,
                        rank: r.addr.bank / view.channel.banks_per_rank(),
                        bank: r.addr.bank,
                    });
                }
            }
        }
        if marked > 0 && self.observing {
            self.events.insert(
                announce_at,
                Event::BatchFormed {
                    at: view.now,
                    id: 1,
                    marked,
                    cap: None,
                    exclusive: false,
                    per_thread: Vec::new(),
                },
            );
        }
        marked > 0
    }

    fn priority_key(&self, req: &Request, _view: &SchedView<'_>) -> u128 {
        // Higher key = served first: unmarked requests win, ties oldest-first.
        (u128::from(!req.marked) << 64) | u128::from(u64::MAX - req.id.0)
    }

    fn set_observing(&mut self, enabled: bool) {
        self.observing = enabled;
        if !enabled {
            self.events.clear();
        }
    }

    fn drain_events(&mut self, out: &mut Vec<Event>) {
        out.append(&mut self.events);
    }
}

#[test]
fn broken_scheduler_verdicts_are_identical_online_and_offline() {
    let spec = prelude::invariants();
    let mut ctrl = Controller::new(DramConfig::default(), Box::new(RuleTwoInverted::default()));
    let mut fan = FanoutSink::new();
    fan.push(Box::new(InvariantSink::new()));
    fan.push(Box::new(spec.monitor()));
    fan.push(Box::new(JsonlSink::new(Vec::new())));
    ctrl.set_event_sink(Box::new(fan));
    // Three same-(bank,row) read pairs across threads: even ids get marked,
    // odd ids do not, and the broken priority serves the unmarked ones first.
    for id in 0..6u64 {
        let addr = LineAddr { channel: 0, bank: (id / 2) as usize, row: 5, col: id };
        ctrl.try_enqueue(Request::new(id, ThreadId(id as usize % 3), addr, RequestKind::Read, 0))
            .unwrap();
    }
    let mut now = 0;
    let done = ctrl.run_to_drain(&mut now, 1_000_000);
    assert_eq!(done.len(), 6);

    let sink = ctrl.take_event_sink().expect("sink attached above");
    let Ok(fan) = downcast_sink::<FanoutSink>(sink) else { panic!("fanout attached") };
    let mut sink_v = Vec::new();
    let mut mon_v = Vec::new();
    let mut trace = String::new();
    for child in fan.into_sinks() {
        let child = match downcast_sink::<InvariantSink>(child) {
            Ok(inv) => {
                sink_v = sink_verdicts(&inv);
                continue;
            }
            Err(child) => child,
        };
        let child = match downcast_sink::<parbs_monitor::Monitor>(child) {
            Ok(mon) => {
                mon_v = monitor_verdicts(&mon);
                continue;
            }
            Err(child) => child,
        };
        if let Ok(jsonl) = downcast_sink::<JsonlSink<Vec<u8>>>(child) {
            trace = jsonl.into_string();
        }
    }

    assert!(!sink_v.is_empty(), "the broken scheduler must trip the invariant sink");
    assert!(
        sink_v.iter().all(|(name, _, thread)| name == "marked-first" && thread.is_some()),
        "rule-2 inversion produces marked-first verdicts with a thread: {sink_v:?}"
    );
    assert_eq!(sink_v, mon_v, "monitor and sink agree on every (rule, cycle, thread) triple");

    // Offline replay of the same trace reproduces the same verdicts again.
    let replayed = replay_jsonl(&spec, &trace).expect("trace replays");
    assert_eq!(monitor_verdicts(&replayed), sink_v, "offline replay reaches the same verdicts");
}
